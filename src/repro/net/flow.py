"""Flow abstraction over packet traces.

The generated firewall rules act per packet, but the evaluation also reports
flow-level outcomes (a flow is malicious if ground truth says so; it is
*blocked* if the data plane drops its packets).  This module provides:

* :class:`FlowKey` — canonical 5-tuple for IP traffic, with a fallback
  link-level key for non-IP stacks,
* :class:`Flow` — an ordered packet collection with summary statistics,
* :class:`FlowTable` — timeout-based flow assembly, the standard
  NetFlow-style construction.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple

from repro.net.packet import Packet
from repro.net.protocols import inet

__all__ = ["FlowKey", "Flow", "FlowTable", "assemble_flows"]


@dataclasses.dataclass(frozen=True, order=True)
class FlowKey:
    """Direction-normalised flow identity.

    For IP traffic this is the classic 5-tuple with endpoints sorted so both
    directions map to the same key.  For non-IP traffic, ``src``/``dst`` hold
    link-level addresses (Zigbee short address, BLE access address) and
    ``protocol`` a stack tag, with ports zero.
    """

    protocol: int
    src: str
    dst: str
    src_port: int
    dst_port: int

    @staticmethod
    def normalised(
        protocol: int, a: str, a_port: int, b: str, b_port: int
    ) -> "FlowKey":
        """Key with (addr, port) endpoints sorted for direction-independence."""
        if (a, a_port) <= (b, b_port):
            return FlowKey(protocol, a, b, a_port, b_port)
        return FlowKey(protocol, b, a, b_port, a_port)


#: Stack tags used in FlowKey.protocol for non-IP traffic.
STACK_ZIGBEE = 1000
STACK_BLE = 1001


def key_for_packet(packet: Packet, stack: str = "ethernet") -> Optional[FlowKey]:
    """Flow key for a packet, or None when it cannot be keyed.

    Args:
        stack: ``"ethernet"`` (parse IP 5-tuple), ``"zigbee"`` or ``"ble"``.
    """
    if stack == "zigbee":
        if len(packet.data) < 9:
            return None
        src = str(int.from_bytes(packet.data[7:9], "big"))
        dst = str(int.from_bytes(packet.data[5:7], "big"))
        return FlowKey.normalised(STACK_ZIGBEE, src, 0, dst, 0)
    if stack == "ble":
        if len(packet.data) < 6:
            return None
        access = str(int.from_bytes(packet.data[2:6], "big"))
        return FlowKey(STACK_BLE, access, access, 0, 0)
    try:
        frame = inet.parse_ethernet_stack(packet.data)
    except ValueError:
        return None
    if frame.ipv4 is None:
        return None
    src = ".".join(
        str(b) for b in frame.ipv4["src_addr"].to_bytes(4, "big")
    )
    dst = ".".join(
        str(b) for b in frame.ipv4["dst_addr"].to_bytes(4, "big")
    )
    sport = dport = 0
    if frame.tcp is not None:
        sport, dport = frame.tcp["src_port"], frame.tcp["dst_port"]
    elif frame.udp is not None:
        sport, dport = frame.udp["src_port"], frame.udp["dst_port"]
    return FlowKey.normalised(frame.ipv4["protocol"], src, sport, dst, dport)


@dataclasses.dataclass
class Flow:
    """An assembled flow: key + ordered packets."""

    key: FlowKey
    packets: List[Packet] = dataclasses.field(default_factory=list)

    def add(self, packet: Packet) -> None:
        self.packets.append(packet)

    @property
    def first_seen(self) -> float:
        return self.packets[0].timestamp if self.packets else 0.0

    @property
    def last_seen(self) -> float:
        return self.packets[-1].timestamp if self.packets else 0.0

    @property
    def duration(self) -> float:
        return self.last_seen - self.first_seen

    @property
    def byte_count(self) -> int:
        return sum(len(p.data) for p in self.packets)

    @property
    def packet_count(self) -> int:
        return len(self.packets)

    def majority_label(self) -> str:
        """Most common ground-truth category across the flow's packets."""
        counts: Dict[str, int] = {}
        for packet in self.packets:
            counts[packet.label.category] = counts.get(packet.label.category, 0) + 1
        return max(counts.items(), key=lambda item: item[1])[0]

    @property
    def is_attack(self) -> bool:
        return self.majority_label() != "benign"


class FlowTable:
    """Timeout-based flow assembly (NetFlow-style idle expiry).

    Packets whose inter-arrival gap within a key exceeds ``idle_timeout``
    start a new flow under the same key.
    """

    def __init__(self, idle_timeout: float = 60.0, stack: str = "ethernet"):
        if idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive")
        self.idle_timeout = idle_timeout
        self.stack = stack
        self._active: Dict[FlowKey, Flow] = {}
        self._expired: List[Flow] = []
        self._unkeyed = Flow(FlowKey(-1, "", "", 0, 0))

    def add(self, packet: Packet) -> None:
        """Route one packet into its flow (creating/expiring as needed)."""
        key = key_for_packet(packet, self.stack)
        if key is None:
            self._unkeyed.add(packet)
            return
        flow = self._active.get(key)
        if flow is not None and packet.timestamp - flow.last_seen > self.idle_timeout:
            self._expired.append(flow)
            flow = None
        if flow is None:
            flow = Flow(key)
            self._active[key] = flow
        flow.add(packet)

    def flows(self) -> List[Flow]:
        """All flows seen so far (expired + still active), arrival-ordered."""
        result = self._expired + list(self._active.values())
        result.sort(key=lambda f: f.first_seen)
        return result

    @property
    def unkeyed(self) -> Flow:
        """Packets that could not be keyed (non-IP in an ethernet table)."""
        return self._unkeyed


def assemble_flows(
    packets: Iterable[Packet], *, idle_timeout: float = 60.0, stack: str = "ethernet"
) -> List[Flow]:
    """Convenience one-shot flow assembly."""
    table = FlowTable(idle_timeout=idle_timeout, stack=stack)
    for packet in packets:
        table.add(packet)
    return table.flows()
