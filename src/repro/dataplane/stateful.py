"""Stateful data-plane defense stage: in-switch rate limiting.

The learned rules of :mod:`repro.core` are *stateless* — each packet is
judged on its bytes alone.  Programmable data planes can additionally keep
per-source state in registers, which catches purely *volumetric* anomalies
(a benign-looking packet repeated ten thousand times a second).  This
module implements the standard sketch-based design as an optional pipeline
stage in front of the learned table:

* a :class:`CountMinSketch` counts packets per source key within a window,
* sources above ``threshold`` are dropped for the rest of the window,
* windows rotate by epoch, as a P4 program does with a register version
  bit.

The E11 benchmark ablates stateless rules vs. the rate stage vs. both —
showing they are complementary (the rate stage alone misses *low-rate*
attacks such as telnet brute force; the learned rules alone treat every
packet equally).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Tuple

from repro.dataplane.tables import MatchResult
from repro.net.packet import Packet
from repro.net.sketch import CountMinSketch

__all__ = [
    "RateLimitStage",
    "StatefulGateway",
    "source_key_inet",
    "dest_key_inet",
    "source_key_offsets",
]


def source_key_inet(packet: Packet) -> Tuple[int, ...]:
    """Source key for Ethernet/IPv4 traffic: the IPv4 source address bytes.

    Byte offsets 26..29 of an Ethernet/IPv4 frame — the same fixed slices a
    P4 program would hash, no parser required.  Note the structural limit:
    spoofed-source floods present a fresh key per packet and evade any
    per-source counter (shown in E11).
    """
    return packet.bytes_at((26, 27, 28, 29))


def dest_key_inet(packet: Packet) -> Tuple[int, ...]:
    """Destination key (IPv4 dst bytes 30..33): aggregates floods toward a
    victim, at the cost of counting benign traffic to the same host."""
    return packet.bytes_at((30, 31, 32, 33))


def source_key_offsets(offsets: Tuple[int, ...]) -> Callable[[Packet], Tuple[int, ...]]:
    """Key extractor over arbitrary byte offsets (for non-IP stacks)."""

    def extract(packet: Packet) -> Tuple[int, ...]:
        return packet.bytes_at(offsets)

    return extract


@dataclasses.dataclass
class RateLimitStats:
    """Counters of the rate-limit stage."""

    checked: int = 0
    dropped: int = 0
    windows: int = 0


class RateLimitStage:
    """Sketch-based per-source rate limiter (a stateful pipeline stage).

    Behaves like a table for :class:`repro.dataplane.switch.Switch`: its
    :meth:`lookup` returns ``drop`` for packets from sources exceeding
    ``threshold`` packets per ``window`` seconds, and a non-terminal
    ``continue`` otherwise, so the learned firewall table still sees the
    remaining traffic.

    Args:
        threshold: packets per window per source before dropping.
        window: window length in seconds (epoch rotation).
        key_fn: packet → hashable source key (defaults to IPv4 source).
        width/depth: sketch dimensions.
        name: stage name for verdict provenance.
    """

    def __init__(
        self,
        *,
        threshold: int = 100,
        window: float = 1.0,
        key_fn: Optional[Callable[[Packet], Tuple[int, ...]]] = None,
        width: int = 2048,
        depth: int = 3,
        name: str = "rate_limit",
    ):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if window <= 0:
            raise ValueError("window must be positive")
        self.threshold = threshold
        self.window = window
        self.key_fn = key_fn or source_key_inet
        self.sketch = CountMinSketch(width=width, depth=depth)
        self.name = name
        self.key_width = 0  # duck-typed: accepts any parser width
        self.default_action = "continue"
        self.stats = RateLimitStats()
        self._epoch = 0

    def _maybe_rotate(self, timestamp: float) -> None:
        epoch = int(timestamp / self.window)
        if epoch != self._epoch:
            self.sketch.clear()
            self._epoch = epoch
            self.stats.windows += 1

    def check(self, packet: Packet) -> MatchResult:
        """Count the packet's source; drop if over threshold this window."""
        self._maybe_rotate(packet.timestamp)
        self.stats.checked += 1
        count = self.sketch.add(self.key_fn(packet))
        if count > self.threshold:
            self.stats.dropped += 1
            return MatchResult(True, "drop", entry_id=None)
        return MatchResult(False, "continue")

    # Table protocol used by Switch.process: ignore the extracted key and
    # judge the packet by state instead. Switch passes only the key, so a
    # stateful stage is driven through process_stateful below.

    def lookup(self, key, packet_size: int = 0) -> MatchResult:
        raise RuntimeError(
            "RateLimitStage is stateful; use StatefulGateway.process, not "
            "a plain Switch pipeline"
        )


class StatefulGateway:
    """A gateway combining the rate stage with a deployed learned switch.

    Order matches the P4 program layout: registers first (cheap, catches
    floods early), learned ternary table second.
    """

    def __init__(self, rate_stage: Optional[RateLimitStage], controller):
        self.rate_stage = rate_stage
        self.controller = controller

    def process(self, packet: Packet):
        """Verdict for one packet (rate stage first, then learned rules)."""
        from repro.dataplane.switch import Verdict

        if self.rate_stage is not None:
            result = self.rate_stage.check(packet)
            if result.hit and result.action == "drop":
                return Verdict("drop", table=self.rate_stage.name)
        return self.controller.switch.process(packet)

    def process_trace(self, packets):
        return [self.process(packet) for packet in packets]
