"""Programmable data plane substrate.

A behavioural-model software switch in the spirit of bmv2: a configurable
parser that slices byte offsets out of raw packets, match-action tables
(exact / ternary / range / LPM) with priorities, counters and capacity
limits, a P4-16 source generator, and a controller that installs the rule
sets produced by :mod:`repro.core` at runtime.
"""

from repro.dataplane.bmv2 import generate_bmv2_config
from repro.dataplane.compiled import (
    CompiledClassifier,
    CompiledTable,
    CompileReport,
    compile_table,
)
from repro.dataplane.controller import DeploymentReport, GatewayController, UpdateReport
from repro.dataplane.p4gen import generate_p4_program
from repro.dataplane.queueing import EgressQueue, QueueResult, simulate_queue
from repro.dataplane.stateful import RateLimitStage, StatefulGateway
from repro.dataplane.switch import Switch, SwitchConfig, Verdict
from repro.dataplane.tables import (
    BatchMatchResult,
    ExactTable,
    LpmTable,
    RangeTable,
    TableFullError,
    TernaryTable,
)

__all__ = [
    "Switch",
    "SwitchConfig",
    "Verdict",
    "BatchMatchResult",
    "ExactTable",
    "TernaryTable",
    "RangeTable",
    "LpmTable",
    "TableFullError",
    "CompiledClassifier",
    "CompiledTable",
    "CompileReport",
    "compile_table",
    "GatewayController",
    "DeploymentReport",
    "UpdateReport",
    "RateLimitStage",
    "StatefulGateway",
    "EgressQueue",
    "QueueResult",
    "simulate_queue",
    "generate_p4_program",
    "generate_bmv2_config",
]
