"""P4Runtime-style controller↔switch protocol.

Real deployments separate the control plane (a server) from the switch (an
agent) and speak P4Runtime over gRPC.  This module models that split
faithfully without gRPC: typed request/response messages with a JSON wire
encoding, a :class:`Channel` transporting encoded bytes (with optional
fault injection), a :class:`SwitchAgent` serving the requests against a
local :class:`~repro.dataplane.switch.Switch`, and a
:class:`RemoteController` exposing the same deploy/update surface as
:class:`~repro.dataplane.controller.GatewayController` but through the
wire.

Message semantics follow P4Runtime's batched ``WriteRequest`` with
INSERT / DELETE updates and all-or-nothing error reporting.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.rules import RuleSet, TernaryEntry
from repro.dataplane.switch import Switch, SwitchConfig
from repro.dataplane.tables import TableFullError, TernaryTable

__all__ = [
    "ProtocolError",
    "WriteRequest",
    "WriteResponse",
    "ReadRequest",
    "ReadResponse",
    "Update",
    "Channel",
    "SwitchAgent",
    "RemoteController",
]

PROTOCOL_VERSION = 1

INSERT = "INSERT"
DELETE = "DELETE"


class ProtocolError(RuntimeError):
    """Raised on malformed messages or rejected writes."""


@dataclasses.dataclass(frozen=True)
class Update:
    """One table update inside a WriteRequest."""

    kind: str  # INSERT | DELETE
    table: str
    value: Tuple[int, ...] = ()
    mask: Tuple[int, ...] = ()
    action: str = ""
    priority: int = 0
    entry_id: Optional[int] = None  # DELETE addresses entries by id

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "table": self.table,
            "value": list(self.value),
            "mask": list(self.mask),
            "action": self.action,
            "priority": self.priority,
            "entry_id": self.entry_id,
        }

    @staticmethod
    def from_dict(data: Dict) -> "Update":
        kind = data.get("kind")
        if kind not in (INSERT, DELETE):
            raise ProtocolError(f"unknown update kind {kind!r}")
        return Update(
            kind=kind,
            table=str(data["table"]),
            value=tuple(int(v) for v in data.get("value", [])),
            mask=tuple(int(v) for v in data.get("mask", [])),
            action=str(data.get("action", "")),
            priority=int(data.get("priority", 0)),
            entry_id=data.get("entry_id"),
        )


@dataclasses.dataclass(frozen=True)
class WriteRequest:
    """Batched, atomic table write."""

    updates: Tuple[Update, ...]
    election_id: int = 1

    def encode(self) -> bytes:
        return json.dumps(
            {
                "type": "write",
                "version": PROTOCOL_VERSION,
                "election_id": self.election_id,
                "updates": [u.to_dict() for u in self.updates],
            }
        ).encode("utf-8")


@dataclasses.dataclass(frozen=True)
class WriteResponse:
    """Outcome of a WriteRequest (all-or-nothing)."""

    ok: bool
    entry_ids: Tuple[int, ...] = ()
    error: str = ""

    def encode(self) -> bytes:
        return json.dumps(
            {
                "type": "write_response",
                "ok": self.ok,
                "entry_ids": list(self.entry_ids),
                "error": self.error,
            }
        ).encode("utf-8")


@dataclasses.dataclass(frozen=True)
class ReadRequest:
    """Read table state (entries + counters)."""

    table: str

    def encode(self) -> bytes:
        return json.dumps(
            {"type": "read", "version": PROTOCOL_VERSION, "table": self.table}
        ).encode("utf-8")


@dataclasses.dataclass(frozen=True)
class ReadResponse:
    """Table dump."""

    ok: bool
    entries: Tuple[Dict, ...] = ()
    error: str = ""

    def encode(self) -> bytes:
        return json.dumps(
            {
                "type": "read_response",
                "ok": self.ok,
                "entries": list(self.entries),
                "error": self.error,
            }
        ).encode("utf-8")


def decode_message(raw: bytes):
    """Decode any protocol message from wire bytes."""
    try:
        data = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable message: {exc}") from exc
    if not isinstance(data, dict):
        raise ProtocolError(f"message is not an object: {type(data).__name__}")
    message_type = data.get("type")
    if message_type == "write":
        if data.get("version") != PROTOCOL_VERSION:
            raise ProtocolError(f"bad version {data.get('version')!r}")
        return WriteRequest(
            updates=tuple(Update.from_dict(u) for u in data.get("updates", [])),
            election_id=int(data.get("election_id", 1)),
        )
    if message_type == "write_response":
        return WriteResponse(
            ok=bool(data["ok"]),
            entry_ids=tuple(int(i) for i in data.get("entry_ids", [])),
            error=str(data.get("error", "")),
        )
    if message_type == "read":
        if data.get("version") != PROTOCOL_VERSION:
            raise ProtocolError(f"bad version {data.get('version')!r}")
        return ReadRequest(table=str(data["table"]))
    if message_type == "read_response":
        return ReadResponse(
            ok=bool(data["ok"]),
            entries=tuple(data.get("entries", [])),
            error=str(data.get("error", "")),
        )
    raise ProtocolError(f"unknown message type {message_type!r}")


class Channel:
    """Byte transport between controller and agent, with fault injection.

    Args:
        corrupt: optional hook applied to every payload (tests inject
            truncation/bit-flips here to exercise error paths).
    """

    def __init__(self, corrupt: Optional[Callable[[bytes], bytes]] = None):
        self.corrupt = corrupt
        self.requests_sent = 0
        self.bytes_sent = 0

    def call(self, agent: "SwitchAgent", payload: bytes) -> bytes:
        """Synchronous request/response round trip."""
        self.requests_sent += 1
        self.bytes_sent += len(payload)
        if self.corrupt is not None:
            payload = self.corrupt(payload)
        response = agent.serve(payload)
        self.bytes_sent += len(response)
        return response


class SwitchAgent:
    """The switch-side protocol server.

    Owns a :class:`Switch` whose firewall table it mutates on behalf of
    the remote controller.  Writes are transactional: if any update in a
    batch fails, the whole batch is rolled back before the error response
    is sent (P4Runtime's all-or-nothing contract).
    """

    def __init__(self, key_offsets: Sequence[int], *, table_capacity: int = 4096):
        self.switch = Switch(SwitchConfig(key_offsets=tuple(key_offsets)))
        self._table = TernaryTable(
            "firewall", len(key_offsets), max_entries=table_capacity
        )
        self.switch.add_table(self._table)
        self._highest_election_id = 0

    def serve(self, payload: bytes) -> bytes:
        """Handle one encoded request; always returns an encoded response."""
        try:
            message = decode_message(payload)
        except ProtocolError as exc:
            return WriteResponse(ok=False, error=str(exc)).encode()
        if isinstance(message, WriteRequest):
            return self._serve_write(message).encode()
        if isinstance(message, ReadRequest):
            return self._serve_read(message).encode()
        return WriteResponse(ok=False, error="unexpected message").encode()

    def _serve_write(self, request: WriteRequest) -> WriteResponse:
        if request.election_id < self._highest_election_id:
            return WriteResponse(
                ok=False,
                error=f"stale election id {request.election_id} "
                f"< {self._highest_election_id}",
            )
        self._highest_election_id = request.election_id
        applied: List[Tuple[str, int]] = []  # (kind, entry_id) for rollback
        entry_ids: List[int] = []
        try:
            for update in request.updates:
                if update.table != self._table.name:
                    raise ProtocolError(f"unknown table {update.table!r}")
                if update.kind == INSERT:
                    entry_id = self._table.add(
                        update.value, update.mask, update.action,
                        priority=update.priority,
                    )
                    applied.append((INSERT, entry_id))
                    entry_ids.append(entry_id)
                else:
                    if update.entry_id is None:
                        raise ProtocolError("DELETE requires entry_id")
                    self._table.remove(update.entry_id)
                    applied.append((DELETE, update.entry_id))
        except (ProtocolError, TableFullError, KeyError, ValueError) as exc:
            # All-or-nothing: undo the inserts (deletes cannot be undone
            # faithfully without snapshots, so reject batches that mix a
            # failing tail after deletes the same way P4Runtime servers do
            # — by reporting the batch failed; our controller never mixes).
            for kind, entry_id in reversed(applied):
                if kind == INSERT:
                    self._table.remove(entry_id)
            return WriteResponse(ok=False, error=f"{type(exc).__name__}: {exc}")
        return WriteResponse(ok=True, entry_ids=tuple(entry_ids))

    def _serve_read(self, request: ReadRequest) -> ReadResponse:
        if request.table != self._table.name:
            return ReadResponse(ok=False, error=f"unknown table {request.table!r}")
        entries = tuple(
            {
                "entry_id": record.entry_id,
                "value": list(record.value),
                "mask": list(record.mask),
                "priority": record.priority,
                "action": record.action,
                "hits": self._table.hit_count(record.entry_id),
            }
            for record in self._table.entries()
        )
        return ReadResponse(ok=True, entries=entries)


class RemoteController:
    """Controller speaking the wire protocol to a (possibly remote) agent."""

    def __init__(self, agent: SwitchAgent, *, channel: Optional[Channel] = None):
        self.agent = agent
        self.channel = channel or Channel()
        self._election_id = 1
        self._installed_ids: List[int] = []

    def _call(self, request) -> object:
        response = decode_message(self.channel.call(self.agent, request.encode()))
        return response

    def deploy(self, ruleset: RuleSet) -> int:
        """Replace the remote firewall with ``ruleset``; returns entry count.

        Issues one DELETE batch for the previous deployment and one INSERT
        batch for the new entries, each atomic on the agent side.
        """
        if tuple(ruleset.offsets) != self.agent.switch.config.key_offsets:
            raise ValueError("ruleset offsets do not match the remote parser")
        if self._installed_ids:
            deletes = tuple(
                Update(DELETE, "firewall", entry_id=entry_id)
                for entry_id in self._installed_ids
            )
            response = self._call(
                WriteRequest(deletes, election_id=self._election_id)
            )
            if not isinstance(response, WriteResponse) or not response.ok:
                raise ProtocolError(f"remote delete failed: {response}")
            self._installed_ids = []
        inserts = tuple(
            Update(
                INSERT, "firewall",
                value=entry.value, mask=entry.mask,
                action=entry.action, priority=entry.priority,
            )
            for entry in ruleset.to_ternary()
        )
        response = self._call(WriteRequest(inserts, election_id=self._election_id))
        if not isinstance(response, WriteResponse) or not response.ok:
            raise ProtocolError(f"remote insert failed: {response}")
        self._installed_ids = list(response.entry_ids)
        return len(self._installed_ids)

    def read_entries(self) -> List[Dict]:
        """Dump the remote table (entries + hit counters)."""
        response = self._call(ReadRequest("firewall"))
        if not isinstance(response, ReadResponse) or not response.ok:
            raise ProtocolError(f"remote read failed: {response}")
        return list(response.entries)

    def take_over(self) -> None:
        """Bump the election id (a new controller instance winning mastership)."""
        self._election_id += 1
