"""Data-plane resource accounting.

Compares what different firewall strategies cost on switch hardware, in the
units the paper's efficiency claim is about: match key width, table entries,
and TCAM/SRAM bits.  Used by the E5 benchmark.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Sequence

from repro.core.rules import RuleSet

__all__ = ["ResourceEstimate", "estimate_ruleset", "estimate_exact_table", "FIVE_TUPLE_BITS"]

#: Classic firewall key: src/dst IPv4 + src/dst port + protocol.
FIVE_TUPLE_BITS = 32 + 32 + 16 + 16 + 8


@dataclasses.dataclass(frozen=True)
class ResourceEstimate:
    """Hardware cost of one table strategy."""

    strategy: str
    entries: int
    key_bits: int
    tcam_bits: int
    sram_bits: int

    @property
    def total_bits(self) -> int:
        return self.tcam_bits + self.sram_bits

    def row(self) -> Dict[str, object]:
        return {
            "strategy": self.strategy,
            "entries": self.entries,
            "key_bits": self.key_bits,
            "tcam_bits": self.tcam_bits,
            "sram_bits": self.sram_bits,
            "total_bits": self.total_bits,
        }


#: SRAM overhead per entry (action id + counter), a typical ASIC figure.
_ACTION_SRAM_BITS = 8 + 64


def estimate_ruleset(ruleset: RuleSet, *, strategy: str = "two-stage") -> ResourceEstimate:
    """Cost of the learned rule set in a ternary table."""
    report = ruleset.resource_report()
    entries = report["ternary_entries"]
    key_bits = report["match_width_bits"]
    return ResourceEstimate(
        strategy=strategy,
        entries=entries,
        key_bits=key_bits,
        tcam_bits=2 * key_bits * entries,
        sram_bits=_ACTION_SRAM_BITS * entries,
    )


def estimate_exact_table(
    n_entries: int, key_bits: int, *, strategy: str
) -> ResourceEstimate:
    """Cost of an exact-match (SRAM hash) table with ``n_entries``."""
    return ResourceEstimate(
        strategy=strategy,
        entries=n_entries,
        key_bits=key_bits,
        tcam_bits=0,
        # hash tables typically provision ~1.25x for load factor
        sram_bits=int(1.25 * n_entries * (key_bits + _ACTION_SRAM_BITS)),
    )
