"""Behavioural-model software switch (bmv2-style).

The switch models the pieces of a P4 target the evaluation needs:

* a **parser** configured with byte offsets (the P4 program slices the same
  offsets out of the packet; bytes past the end of a short packet read 0,
  matching the zero-initialised header convention),
* an **ingress pipeline** of match-action tables applied in order until a
  terminal action (``drop`` / ``allow``) decides the packet,
* **registers** (named integer arrays, as in P4 ``register<>``),
* port and drop **statistics**.

Two data paths share these semantics:

* :meth:`Switch.process` — the scalar reference path, one packet at a
  time through the pipeline;
* :meth:`Switch.process_batch` — a numpy-vectorised path that extracts
  every match key in one pass and runs the tables' ``lookup_batch``
  implementations, decided-packet masking preserving the scalar path's
  first-table-wins semantics bit for bit.  ``tests/test_batch_differential.py``
  holds the two paths equal on randomized rule sets and traces.

A third, opt-in acceleration rides on the batch path:
:meth:`Switch.compile` (or ``REPRO_COMPILED=1``) compiles the installed
rule sets into per-byte LUT bitmaps (:mod:`repro.dataplane.compiled`)
and ``process_batch`` then classifies via table gathers and bitwise
intersections instead of entry broadcasts.  Entry churn invalidates the
program (lazy recompile on the next batch); verdicts, counters, and
decision records remain bit-identical to both oracle paths
(``tests/test_compiled_differential.py``).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
import repro.obs.registry  # noqa: F401  (module handle resolved below)
import sys

# The live registry module — the package attribute `repro.obs.registry`
# is rebound to the registry() *function* by the package __init__, so a
# dotted import can't name the module directly.
_obs_state = sys.modules["repro.obs.registry"]
from repro.obs.events import KIND_DECISION, DecisionRecord
from repro.net.packet import Packet
from repro.dataplane import compiled as compiled_mod
from repro.dataplane.compiled import CompiledClassifier, CompileReport
from repro.dataplane.tables import (
    ExactTable,
    LpmTable,
    MatchResult,
    RangeTable,
    TernaryTable,
)

__all__ = ["SwitchConfig", "Switch", "Verdict", "Register"]

AnyTable = Union[ExactTable, TernaryTable, RangeTable, LpmTable]

#: Actions with pipeline-terminating semantics.  ``quarantine`` forwards to
#: a dedicated inspection port instead of the normal egress.
TERMINAL_ACTIONS = ("drop", "allow", "quarantine")


@dataclasses.dataclass
class SwitchConfig:
    """Static switch configuration.

    Attributes:
        key_offsets: byte offsets the parser extracts, in key order
            (identical to the rule set's offsets).
        pipeline_depth: maximum tables in the ingress pipeline.
    """

    key_offsets: Tuple[int, ...]
    pipeline_depth: int = 4

    def __post_init__(self) -> None:
        if not self.key_offsets:
            raise ValueError("key_offsets must be non-empty")
        if len(set(self.key_offsets)) != len(self.key_offsets):
            raise ValueError("key_offsets must be unique")


@dataclasses.dataclass(frozen=True)
class Verdict:
    """Per-packet pipeline outcome.

    ``tenant`` is stamped by the fleet layer when the packet was served
    under a multi-tenant deployment; single-tenant paths leave it
    ``None`` so existing comparisons stay bit-identical.
    """

    action: str
    table: Optional[str] = None
    entry_id: Optional[int] = None
    tenant: Optional[str] = None

    @property
    def dropped(self) -> bool:
        return self.action == "drop"


class Register:
    """A named integer array, as in P4 ``register<bit<64>>(size)``."""

    def __init__(self, name: str, size: int):
        if size < 1:
            raise ValueError("register size must be >= 1")
        self.name = name
        self._cells = [0] * size

    def __len__(self) -> int:
        return len(self._cells)

    def read(self, index: int) -> int:
        return self._cells[index]

    def write(self, index: int, value: int) -> None:
        self._cells[index] = int(value)

    def increment(self, index: int, delta: int = 1) -> int:
        self._cells[index] += delta
        return self._cells[index]


@dataclasses.dataclass
class SwitchStats:
    """Aggregate packet statistics — the legacy compat view.

    Kept as a plain always-on dataclass because the differential test
    suite (and downstream users of ``Switch.stats``) rely on exact,
    dependency-free counts.  The same quantities are *also* exported
    through :mod:`repro.obs` when observability is enabled
    (``switch_packets_total{verdict=...}`` etc.); new code should read
    the registry — see the migration notes in ``docs/OBSERVABILITY.md``
    and the Observability section of ``docs/ARCHITECTURE.md``.
    """

    received: int = 0
    dropped: int = 0
    allowed: int = 0
    quarantined: int = 0
    bytes_received: int = 0
    bytes_dropped: int = 0
    bytes_quarantined: int = 0

    @property
    def drop_rate(self) -> float:
        return self.dropped / self.received if self.received else 0.0

    def add(self, other: "SwitchStats") -> "SwitchStats":
        """Accumulate another stats block into this one (returns self)."""
        for field in dataclasses.fields(self):
            setattr(
                self,
                field.name,
                getattr(self, field.name) + getattr(other, field.name),
            )
        return self

    @classmethod
    def aggregate(cls, stats: "Iterable[SwitchStats]") -> "SwitchStats":
        """Sum of many stats blocks — e.g. across sharded switches."""
        total = cls()
        for block in stats:
            total.add(block)
        return total


class Switch:
    """A P4-style gateway switch: parser → ingress tables → verdict."""

    def __init__(self, config: SwitchConfig):
        self.config = config
        self._pipeline: List[AnyTable] = []
        self._registers: Dict[str, Register] = {}
        self.stats = SwitchStats()
        #: Optional :class:`repro.obs.FlightRecorder` capturing per-packet
        #: :class:`DecisionRecord` provenance; ``None`` keeps both data
        #: paths record-free.
        self.recorder = None
        self.recorder_shard: Optional[int] = None
        self.recorder_tenant: Optional[str] = None
        self._seq = 0
        self._names_cache: Optional[Tuple[str, ...]] = None
        self._prefix_cache: Optional[Dict[Optional[str], Tuple[str, ...]]] = None
        #: LUT-bitmap program (see :mod:`repro.dataplane.compiled`);
        #: built lazily once enabled via :meth:`compile` or the
        #: ``REPRO_COMPILED`` environment gate.
        self._compiled: Optional[CompiledClassifier] = None
        self._compiled_enabled = compiled_mod.env_enabled()
        self._capture_obs()

    def _capture_obs(self) -> None:
        """(Re)resolve the active default registry and cache instruments.

        Called from ``__init__`` and again from :meth:`_sync_obs` whenever
        the registry generation moves, so a switch built before
        ``use_registry(...)`` still reports into the scoped registry.
        """
        registry = obs.registry()
        self._obs_gen = _obs_state.generation()
        self._obs = registry
        self._obs_on = registry.enabled
        self._obs_verdicts = {
            action: registry.counter(
                "switch_packets_total", {"verdict": action},
                help="packets by final pipeline verdict",
            )
            for action in TERMINAL_ACTIONS
        }
        self._obs_bytes = {
            action: registry.counter(
                "switch_bytes_total", {"verdict": action}, unit="bytes",
                help="payload bytes by final pipeline verdict",
            )
            for action in TERMINAL_ACTIONS
        }
        self._obs_received = registry.counter(
            "switch_packets_received_total", help="packets entering the pipeline"
        )
        self._obs_bytes_received = registry.counter(
            "switch_bytes_received_total", unit="bytes",
            help="payload bytes entering the pipeline",
        )
        self._obs_batch_seconds = registry.histogram(
            "switch_batch_seconds", unit="s",
            help="wall-clock seconds per process_batch call",
        )

    def _sync_obs(self) -> None:
        # One int compare in the steady state; see registry._generation.
        if _obs_state._generation != self._obs_gen:
            self._capture_obs()

    def attach_recorder(
        self,
        recorder,
        *,
        shard: Optional[int] = None,
        tenant: Optional[str] = None,
    ) -> None:
        """Attach (or detach, with ``None``) a decision flight recorder."""
        self.recorder = recorder
        self.recorder_shard = shard
        self.recorder_tenant = tenant

    # -- configuration -----------------------------------------------------

    def add_table(self, table: AnyTable) -> None:
        """Append a table to the ingress pipeline."""
        if len(self._pipeline) >= self.config.pipeline_depth:
            raise RuntimeError(
                f"pipeline depth {self.config.pipeline_depth} exceeded"
            )
        if table.key_width != len(self.config.key_offsets):
            raise ValueError(
                f"table {table.name!r} key width {table.key_width} != "
                f"parser width {len(self.config.key_offsets)}"
            )
        self._pipeline.append(table)
        self._names_cache = None
        self._prefix_cache = None

    def _pipeline_names(self) -> Tuple[str, ...]:
        if self._names_cache is None:
            self._names_cache = tuple(t.name for t in self._pipeline)
        return self._names_cache

    def _table_prefixes(self) -> Dict[Optional[str], Tuple[str, ...]]:
        """``table name -> names of tables consulted up to and including it``.

        ``None`` (no table decided the packet) maps to the full pipeline.
        """
        if self._prefix_cache is None:
            names = self._pipeline_names()
            prefixes: Dict[Optional[str], Tuple[str, ...]] = {
                name: names[: i + 1] for i, name in enumerate(names)
            }
            prefixes[None] = names
            self._prefix_cache = prefixes
        return self._prefix_cache

    def table(self, name: str) -> AnyTable:
        """Look up a pipeline table by name."""
        for table in self._pipeline:
            if table.name == name:
                return table
        raise KeyError(f"no table {name!r}")

    @property
    def tables(self) -> List[AnyTable]:
        return list(self._pipeline)

    def register(self, name: str, size: int = 1) -> Register:
        """Get or create a named register array."""
        if name not in self._registers:
            self._registers[name] = Register(name, size)
        return self._registers[name]

    # -- compiled classification ---------------------------------------------

    @property
    def compiled_enabled(self) -> bool:
        """Whether :meth:`process_batch` uses the compiled LUT path."""
        return self._compiled_enabled

    @property
    def compiled_generation(self) -> int:
        """Active compiled-program generation (0 = never compiled)."""
        return self._compiled.generation if self._compiled is not None else 0

    def compile(self) -> CompileReport:
        """Opt in to compiled classification and build the program now.

        Installs/removes on any pipeline table invalidate the program;
        the next :meth:`process_batch` recompiles lazily (callers that
        must keep compile cost out of the batch path — e.g. the serve
        layer's atomic rule swaps — call :meth:`compile` again eagerly
        after mutating entries).
        """
        self._compiled_enabled = True
        if self._compiled is None:
            self._compiled = CompiledClassifier()
        return self._compiled.compile(self._pipeline)

    def uncompile(self) -> None:
        """Drop the compiled program and return to the vectorised path."""
        self._compiled_enabled = False
        self._compiled = None

    def _compiled_program(self) -> CompiledClassifier:
        """The current program, rebuilt first if any table mutated."""
        if self._compiled is None:
            self._compiled = CompiledClassifier()
        self._compiled.refresh(self._pipeline)
        return self._compiled

    # -- data path -----------------------------------------------------------

    def parse_key(self, packet: Packet) -> Tuple[int, ...]:
        """Extract the match key (the P4 parser's job)."""
        return packet.bytes_at(self.config.key_offsets)

    def process(self, packet: Packet, *, seq: Optional[int] = None) -> Verdict:
        """Run one packet through the pipeline and update statistics.

        Args:
            seq: sequence number stamped on the packet's
                :class:`DecisionRecord` when a recorder is attached
                (defaults to the switch's own running counter).
        """
        # _sync_obs inlined: this is a per-packet site, so skip the
        # method-call overhead and do just the generation compare.
        if _obs_state._generation != self._obs_gen:
            self._capture_obs()
        self.stats.received += 1
        self.stats.bytes_received += len(packet.data)
        key = self.parse_key(packet)
        verdict = Verdict("allow")
        decided_at = len(self._pipeline) - 1
        for position, table in enumerate(self._pipeline):
            result: MatchResult = table.lookup(key, packet_size=len(packet.data))
            action = result.action
            if action in TERMINAL_ACTIONS:
                verdict = Verdict(action, table=table.name, entry_id=result.entry_id)
                decided_at = position
                break
        if verdict.dropped:
            self.stats.dropped += 1
            self.stats.bytes_dropped += len(packet.data)
        elif verdict.action == "quarantine":
            self.stats.quarantined += 1
            self.stats.bytes_quarantined += len(packet.data)
        else:
            self.stats.allowed += 1
        if self._obs_on:
            size = len(packet.data)
            self._obs_received.inc()
            self._obs_bytes_received.inc(size)
            self._obs_verdicts[verdict.action].inc()
            self._obs_bytes[verdict.action].inc(size)
        if self.recorder is not None:
            if seq is None:
                seq = self._seq
                self._seq += 1
            self._record_decision(packet, key, verdict, decided_at, seq)
        return verdict

    def _record_decision(self, packet, key, verdict, decided_at, seq) -> None:
        recorder = self.recorder
        if verdict.action == "allow" and not recorder.admit_permit(seq):
            recorder.note_sampled_out()
            return
        recorder.add(
            DecisionRecord(
                kind=KIND_DECISION,
                seq=int(seq),
                timestamp=packet.timestamp,
                verdict=verdict.action,
                shard=self.recorder_shard,
                tenant=self.recorder_tenant,
                table=verdict.table,
                entry_id=verdict.entry_id,
                tables=self._pipeline_names()[: decided_at + 1],
                offsets=tuple(self.config.key_offsets),
                values=tuple(int(v) for v in key),
            )
        )

    def process_batch(
        self,
        packets: Sequence[Packet],
        *,
        seqs: Optional[Sequence[int]] = None,
    ) -> List[Verdict]:
        """Vectorised :meth:`process` over a whole batch of packets.

        Extracts all match keys as one ``(n, key_width)`` uint8 matrix,
        runs each table's ``lookup_batch`` on the packets still undecided
        when that table is reached (first-table-wins, like the scalar
        loop), and updates statistics and table counters in aggregate.
        With compiled classification enabled (:meth:`compile` /
        ``REPRO_COMPILED``), per-table matching goes through the LUT
        program instead of ``lookup_batch``.  Either way verdicts,
        stats, counters, and decision records are identical to running
        :meth:`process` packet by packet.

        Args:
            seqs: per-packet sequence numbers for decision records
                (defaults to the switch's running counter).
        """
        self._sync_obs()
        n = len(packets)
        if n == 0:
            return []
        sizes = np.fromiter(
            (len(p.data) for p in packets), dtype=np.int64, count=n
        )
        keys = Packet.batch_keys(packets, self.config.key_offsets)
        timestamps = None
        if self.recorder is not None:
            timestamps = np.fromiter(
                (p.timestamp for p in packets), dtype=np.float64, count=n
            )
        final_action, final_table, final_entry = self.classify_arrays(
            keys, sizes, timestamps=timestamps, seqs=seqs
        )
        return [
            Verdict(
                final_action[i],
                table=final_table[i],
                entry_id=int(final_entry[i]) if final_entry[i] >= 0 else None,
            )
            for i in range(n)
        ]

    def classify_arrays(
        self,
        keys: np.ndarray,
        sizes: np.ndarray,
        *,
        timestamps: Optional[np.ndarray] = None,
        seqs: Optional[Sequence[int]] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Classify a pre-extracted ``(n, key_width)`` key matrix.

        The array core of :meth:`process_batch`, shared with the
        process-parallel serve backend (whose workers receive key
        matrices over shared memory, never Packet objects).  Updates
        stats, observability counters, and — when a recorder is
        attached — decision records exactly as :meth:`process_batch`
        does.  Returns ``(action, table, entry_id)`` arrays (object,
        object, int64; no-table/no-entry encoded as ``None``/``-1``).

        Args:
            timestamps: per-packet stream timestamps, required only
                when a recorder is attached (stamped on records).
            seqs: per-packet sequence numbers for decision records
                (defaults to the switch's running counter).
        """
        self._sync_obs()
        n = keys.shape[0]
        start_time = time.perf_counter() if self._obs_on else 0.0
        self.stats.received += n
        self.stats.bytes_received += int(sizes.sum())

        program = self._compiled_program() if self._compiled_enabled else None
        final_action = np.full(n, "allow", dtype=object)
        final_table = np.full(n, None, dtype=object)
        final_entry = np.full(n, -1, dtype=np.int64)
        pending = np.arange(n)
        for table in self._pipeline:
            if not pending.size:
                break
            if program is not None:
                result = program.lookup_batch(
                    table, keys[pending], packet_sizes=sizes[pending]
                )
            else:
                result = table.lookup_batch(
                    keys[pending], packet_sizes=sizes[pending]
                )
            terminal_codes = [
                code
                for code, action in enumerate(result.actions)
                if action in TERMINAL_ACTIONS
            ]
            terminal = np.isin(result.action_code, terminal_codes)
            decided = pending[terminal]
            final_action[decided] = result.action_names()[terminal]
            final_table[decided] = table.name
            final_entry[decided] = result.entry_id[terminal]
            pending = pending[~terminal]

        dropped = final_action == "drop"
        quarantined = final_action == "quarantine"
        self.stats.dropped += int(dropped.sum())
        self.stats.quarantined += int(quarantined.sum())
        self.stats.allowed += int(n - dropped.sum() - quarantined.sum())
        self.stats.bytes_dropped += int(sizes[dropped].sum())
        self.stats.bytes_quarantined += int(sizes[quarantined].sum())
        if self._obs_on:
            n_drop = int(dropped.sum())
            n_quar = int(quarantined.sum())
            self._obs_received.inc(n)
            self._obs_bytes_received.inc(int(sizes.sum()))
            self._obs_verdicts["drop"].inc(n_drop)
            self._obs_verdicts["quarantine"].inc(n_quar)
            self._obs_verdicts["allow"].inc(n - n_drop - n_quar)
            self._obs_bytes["drop"].inc(int(sizes[dropped].sum()))
            self._obs_bytes["quarantine"].inc(int(sizes[quarantined].sum()))
            self._obs_bytes["allow"].inc(
                int(sizes.sum() - sizes[dropped].sum() - sizes[quarantined].sum())
            )
            self._obs_batch_seconds.observe(time.perf_counter() - start_time)
        if self.recorder is not None:
            if seqs is None:
                seq_array = np.arange(self._seq, self._seq + n, dtype=np.int64)
                self._seq += n
            else:
                seq_array = np.asarray(seqs, dtype=np.int64)
            if timestamps is None:
                raise ValueError(
                    "classify_arrays needs timestamps when a recorder is attached"
                )
            self._record_batch(
                timestamps, keys, final_action, final_table, final_entry,
                dropped | quarantined, seq_array,
            )
        return final_action, final_table, final_entry

    def _record_batch(
        self, timestamps, keys, final_action, final_table, final_entry,
        critical, seq_array,
    ) -> None:
        """Batch-path decision capture, record-equal to the scalar path.

        Admission is a pure hash of ``(recorder.seed, seq)``, so the
        vectorised mask here selects exactly the permits the scalar
        path's :meth:`~repro.obs.FlightRecorder.admit_permit` would.
        """
        recorder = self.recorder
        permits = recorder.admit_permit_mask(seq_array) & ~critical
        selected = np.flatnonzero(critical | permits)
        recorder.note_sampled_out(
            int(len(seq_array) - int(critical.sum()) - int(permits.sum()))
        )
        if not selected.size:
            return
        prefixes = self._table_prefixes()
        offsets = tuple(self.config.key_offsets)
        values = keys[selected].tolist()
        for row, i in enumerate(selected):
            table = final_table[i]
            entry = int(final_entry[i])
            recorder.add(
                DecisionRecord(
                    kind=KIND_DECISION,
                    seq=int(seq_array[i]),
                    timestamp=float(timestamps[i]),
                    verdict=final_action[i],
                    shard=self.recorder_shard,
                    tenant=self.recorder_tenant,
                    table=table,
                    entry_id=entry if entry >= 0 else None,
                    tables=prefixes[table],
                    offsets=offsets,
                    values=tuple(values[row]),
                )
            )

    def process_trace(
        self, packets: Sequence[Packet], *, batch_size: Optional[int] = None
    ) -> List[Verdict]:
        """Process a whole trace; returns per-packet verdicts in order.

        Args:
            batch_size: when set, run the trace through
                :meth:`process_batch` in chunks of this size (the fast
                path); ``None`` keeps the scalar reference path.
        """
        self._sync_obs()
        with self._obs.span("switch.process_trace"):
            if batch_size is None:
                return [self.process(packet) for packet in packets]
            if batch_size < 1:
                raise ValueError("batch_size must be >= 1")
            verdicts: List[Verdict] = []
            for start in range(0, len(packets), batch_size):
                verdicts.extend(
                    self.process_batch(packets[start : start + batch_size])
                )
            return verdicts

    def reset_stats(self) -> None:
        self.stats = SwitchStats()
        self._seq = 0
