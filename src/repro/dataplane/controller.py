"""Control plane: install learned rule sets into a switch at runtime.

Plays the role of the SDN controller in the paper's architecture — it takes
the :class:`~repro.core.rules.RuleSet` produced by the learning pipeline,
expands it into ternary entries, and programs the switch's firewall table,
supporting atomic re-deployment (the "dynamically reconfigurable" property
the abstract highlights) and rollback on capacity overflow.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.core.rules import Rule, RuleSet, TernaryEntry
from repro.dataplane.switch import Switch, SwitchConfig
from repro.dataplane.tables import TableFullError, TernaryTable

__all__ = ["GatewayController", "DeploymentReport", "UpdateReport"]

FIREWALL_TABLE = "firewall"


@dataclasses.dataclass
class DeploymentReport:
    """What a deployment did."""

    rules: int
    ternary_entries: int
    match_width_bits: int
    tcam_bits: int
    default_action: str

    def __str__(self) -> str:
        return (
            f"{self.rules} rules → {self.ternary_entries} ternary entries, "
            f"key {self.match_width_bits}b, TCAM {self.tcam_bits}b, "
            f"default={self.default_action}"
        )


@dataclasses.dataclass
class UpdateReport:
    """Entry-level churn of an incremental update."""

    added: int
    removed: int
    kept: int

    def __str__(self) -> str:
        return f"+{self.added} -{self.removed} entries ({self.kept} kept)"


class GatewayController:
    """Runtime controller for one gateway switch.

    Example::

        controller = GatewayController.for_ruleset(rules)
        report = controller.deploy(rules)
        verdict = controller.switch.process(packet)
    """

    def __init__(self, switch: Switch, *, table_capacity: int = 4096):
        self.switch = switch
        self.table_capacity = table_capacity
        self._deployed: Optional[RuleSet] = None
        self._entry_ids: List[int] = []
        self._installed: List[Tuple[TernaryEntry, int]] = []

    @classmethod
    def for_ruleset(
        cls, ruleset: RuleSet, *, table_capacity: int = 4096
    ) -> "GatewayController":
        """Build a switch whose parser matches the rule set's offsets."""
        switch = Switch(SwitchConfig(key_offsets=ruleset.offsets))
        controller = cls(switch, table_capacity=table_capacity)
        return controller

    def _ensure_table(self, default_action: str) -> TernaryTable:
        try:
            table = self.switch.table(FIREWALL_TABLE)
        except KeyError:
            table = TernaryTable(
                FIREWALL_TABLE,
                len(self.switch.config.key_offsets),
                max_entries=self.table_capacity,
                default_action=default_action,
            )
            self.switch.add_table(table)
        if not isinstance(table, TernaryTable):
            raise TypeError("firewall table is not ternary")
        table.default_action = default_action
        return table

    def deploy(self, ruleset: RuleSet) -> DeploymentReport:
        """Atomically replace the firewall contents with ``ruleset``.

        Raises:
            ValueError: if the rule set's offsets don't match the switch
                parser configuration.
            TableFullError: if the expansion exceeds capacity — the
                previous deployment is restored first.
        """
        if tuple(ruleset.offsets) != self.switch.config.key_offsets:
            raise ValueError(
                f"ruleset offsets {ruleset.offsets} != switch parser "
                f"{self.switch.config.key_offsets}"
            )
        table = self._ensure_table(ruleset.default_action)
        previous = self._deployed
        table.clear()
        self._entry_ids = []
        self._installed = []
        try:
            for entry in ruleset.to_ternary():
                entry_id = table.add(
                    entry.value, entry.mask, entry.action,
                    priority=entry.priority,
                )
                self._entry_ids.append(entry_id)
                self._installed.append((entry, entry_id))
        except TableFullError:
            # Roll back to the previous rule set (or empty).
            table.clear()
            self._entry_ids = []
            self._installed = []
            self._deployed = None
            if previous is not None:
                self.deploy(previous)
            raise
        self._deployed = ruleset
        report = ruleset.resource_report()
        return DeploymentReport(
            rules=report["rules"],
            ternary_entries=report["ternary_entries"],
            match_width_bits=report["match_width_bits"],
            tcam_bits=report["tcam_bits"],
            default_action=ruleset.default_action,
        )

    def update(self, ruleset: RuleSet) -> UpdateReport:
        """Incrementally move the table to ``ruleset`` (minimal churn).

        Computes the entry-level diff against the current deployment and
        issues only the necessary removes/adds — the standard controller
        optimisation that keeps rule swaps hitless.  Falls back to a full
        :meth:`deploy` when nothing is deployed yet or the default action
        changes (which cannot be expressed as entry churn).

        Raises:
            TableFullError: if the adds overflow capacity; the previous
                deployment is restored first.
        """
        if (
            self._deployed is None
            or self._deployed.default_action != ruleset.default_action
        ):
            before = len(self._entry_ids)
            self.deploy(ruleset)
            return UpdateReport(added=len(self._entry_ids), removed=before, kept=0)
        if tuple(ruleset.offsets) != self.switch.config.key_offsets:
            raise ValueError(
                f"ruleset offsets {ruleset.offsets} != switch parser "
                f"{self.switch.config.key_offsets}"
            )
        table = self._ensure_table(ruleset.default_action)
        previous = self._deployed

        available: Dict[TernaryEntry, List[int]] = {}
        for entry, entry_id in self._installed:
            available.setdefault(entry, []).append(entry_id)

        new_entries = ruleset.to_ternary()
        reused: List[Tuple[TernaryEntry, Optional[int]]] = []
        to_add: List[TernaryEntry] = []
        for entry in new_entries:
            ids = available.get(entry)
            if ids:
                reused.append((entry, ids.pop()))
            else:
                reused.append((entry, None))
                to_add.append(entry)
        stale_ids = [eid for ids in available.values() for eid in ids]
        for entry_id in stale_ids:
            table.remove(entry_id)
        installed: List[Tuple[TernaryEntry, int]] = []
        try:
            for entry, entry_id in reused:
                if entry_id is None:
                    entry_id = table.add(
                        entry.value, entry.mask, entry.action,
                        priority=entry.priority,
                    )
                installed.append((entry, entry_id))
        except TableFullError:
            self.deploy(previous)  # restore
            raise
        self._installed = installed
        self._entry_ids = [entry_id for __, entry_id in installed]
        self._deployed = ruleset
        return UpdateReport(
            added=len(to_add),
            removed=len(stale_ids),
            kept=len(new_entries) - len(to_add),
        )

    @property
    def deployed(self) -> Optional[RuleSet]:
        return self._deployed

    def hit_counts(self) -> List[int]:
        """Per-entry packet hit counters, in install order."""
        table = self.switch.table(FIREWALL_TABLE)
        return [table.hit_count(entry_id) for entry_id in self._entry_ids]

    def rule_hit_counts(self) -> List[int]:
        """Per-*rule* packet hits (entry counters aggregated per rule).

        ``to_ternary`` emits each rule's expansion contiguously in rule
        order, so entry counters can be folded back onto the rules the
        operator actually wrote.
        """
        if self._deployed is None:
            return []
        entry_hits = self.hit_counts()
        counts: List[int] = []
        cursor = 0
        for rule in self._deployed.rules:
            width = rule.ternary_entry_count()
            counts.append(sum(entry_hits[cursor : cursor + width]))
            cursor += width
        return counts

    def rule_for_entry(self, entry_id: int) -> Rule:
        """The deployed rule whose ternary expansion installed ``entry_id``.

        The inverse of the expansion :meth:`rule_hit_counts` folds over:
        ``to_ternary`` emits each rule's entries contiguously in rule
        order, so the entry's position in the install list locates the
        originating rule — and through :attr:`Rule.provenance`, the
        Stage-2 tree path it distills from.

        Raises:
            KeyError: when ``entry_id`` is not currently installed.
        """
        if self._deployed is not None:
            try:
                position = self._entry_ids.index(entry_id)
            except ValueError:
                position = -1
            if position >= 0:
                cursor = 0
                for rule in self._deployed.rules:
                    cursor += rule.ternary_entry_count()
                    if position < cursor:
                        return rule
        raise KeyError(f"no installed entry {entry_id}")

    def undeploy(self) -> None:
        """Remove all firewall entries (default action still applies)."""
        table = self._ensure_table(
            self._deployed.default_action if self._deployed else "allow"
        )
        table.clear()
        self._deployed = None
        self._entry_ids = []
        self._installed = []
