"""Compiled per-byte LUT-bitmap classification (the DPDK-ACL trick).

The vectorised ``lookup_batch`` paths in :mod:`repro.dataplane.tables`
still broadcast every key against every installed entry — an
O(entries × packets) mask-and-compare per table.  This module compiles
an installed rule set into **per-selected-byte 256-slot lookup tables
whose values are entry bitmasks**, so classifying a batch becomes one
``np.take`` gather per key byte plus a bitwise-AND intersection:

* Entries are laid out in *match order* — the exact order the scalar
  reference path scans them (ternary/range: priority descending, then
  insertion order; LPM: prefix length descending; exact: any order,
  at most one entry can match a key).
* Entry ``e`` owns bit ``e % 64`` of uint64 word ``e // 64``; a table
  with ``E`` entries packs into ``W = ceil(E / 64)`` words.
* For key byte position ``j`` the compiler precomputes
  ``lut[j][b]`` — the bitmask of every entry that *could* match byte
  value ``b`` at position ``j`` (value/mask test for ternary and LPM,
  closed interval test for range, equality for exact).
* A key matches entry ``e`` iff **all** of its bytes are allowed by
  ``e``, so the surviving-entry mask of a key is the AND over its
  bytes' LUT slots, and the winner is the **lowest set bit** (first
  entry in match order) — bit-identical to the scalar scan, including
  the equal-priority insertion-order tie-break.

Per batch the cost is ``key_width`` gathers of ``(n, W)`` words plus
the intersections and one find-first-set pass — independent of the
entry count except through ``W`` (64 entries per word).

The compiled path is a pure acceleration: results are emitted as the
same :class:`~repro.dataplane.tables.BatchMatchResult` the vectorised
path produces and funnelled through the table's own
``_count_batch`` / shadow accounting, so verdicts, direct counters,
aggregate telemetry, and :class:`~repro.obs.events.DecisionRecord`
entry ids are indistinguishable from the scalar and vectorised
oracles.  ``tests/test_compiled_differential.py`` and the hypothesis
suite in ``tests/test_tables_property.py`` lock that equivalence.

Lifecycle (see docs/ARCHITECTURE.md, "Compiled classification"):
:meth:`repro.dataplane.switch.Switch.compile` (or the
``REPRO_COMPILED=1`` environment gate) opts a switch in; every entry
install/remove bumps the owning table's ``generation``, which marks
the program stale; the next ``process_batch`` recompiles lazily, and
``ShardSet.install`` rule swaps in :mod:`repro.serve` recompile
eagerly so the swap stays atomic between batches.  A table kind the
compiler does not understand falls back to its ``lookup_batch``
(counted by ``compiled_fallbacks_total``).
"""

from __future__ import annotations

import dataclasses
import os
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
import repro.obs.registry  # noqa: F401  (module handle resolved below)

# See switch.py: the package rebinds `repro.obs.registry` to a function.
_obs_state = sys.modules["repro.obs.registry"]

from repro.dataplane.tables import (
    BatchMatchResult,
    ExactTable,
    LpmTable,
    RangeTable,
    TernaryTable,
)

__all__ = [
    "ENV_VAR",
    "CompileReport",
    "CompiledTable",
    "CompiledClassifier",
    "compile_table",
    "env_enabled",
]

#: Environment gate: any value except 0/false/no/off opts new switches in.
ENV_VAR = "REPRO_COMPILED"

_BYTES = np.arange(256, dtype=np.uint8)

#: Per-byte popcount, for the shadow-hit accounting on a uint8 view of
#: the surviving words (kept alongside ``np.bitwise_count`` so the
#: counting path has no numpy>=2 requirement baked into correctness).
_POPCOUNT8 = np.array(
    [bin(b).count("1") for b in range(256)], dtype=np.uint8
)


def env_enabled() -> bool:
    """Whether ``REPRO_COMPILED`` opts new switches into compilation."""
    value = os.environ.get(ENV_VAR, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


@dataclasses.dataclass
class CompileReport:
    """What one :meth:`CompiledClassifier.compile` pass produced."""

    generation: int
    tables: int
    compiled_tables: int
    entries: int
    words: int
    seconds: float

    def __str__(self) -> str:
        return (
            f"gen {self.generation}: {self.compiled_tables}/{self.tables} "
            f"tables, {self.entries} entries in {self.words} words, "
            f"{self.seconds * 1e3:.2f} ms"
        )


def _pack_words(allowed: np.ndarray, words: int) -> np.ndarray:
    """Pack an ``(256, E)`` allowed matrix into ``(256, W)`` uint64 words.

    Bit ``e % 64`` of word ``e // 64`` is set where ``allowed[:, e]``
    is true.  Packed via little-endian bit and byte order so entry 0 is
    the least significant bit of word 0 — the find-first-set resolve in
    :meth:`CompiledTable.classify` depends on exactly this layout.
    """
    packed = np.packbits(allowed, axis=1, bitorder="little")
    padded = np.zeros((256, words * 8), dtype=np.uint8)
    padded[:, : packed.shape[1]] = packed
    return padded.view("<u8").reshape(256, words)


@dataclasses.dataclass
class CompiledTable:
    """One table's rule set, compiled to per-byte LUT bitmaps.

    Attributes:
        key_width: bytes per key (LUT count).
        entries: installed entry count at compile time.
        words: uint64 words per bitmask (``ceil(entries / 64)``).
        luts: ``(key_width, 256, words)`` uint64 — per-byte entry masks.
        entry_ids: ``(words * 64,)`` int64 — match-order entry ids,
            padded with ``-1`` past ``entries``.
        priorities: ``(words * 64,)`` int64 — match-order priorities
            (zero for the priority-less exact/LPM kinds), zero-padded.
        entry_actions: match-order action names.
        shadowed: whether multi-match keys count as shadow hits (the
            priority-ordered ternary/range kinds, mirroring the
            oracle paths' ``table_shadow_hits_total`` accounting).
    """

    key_width: int
    entries: int
    words: int
    luts: np.ndarray
    entry_ids: np.ndarray
    priorities: np.ndarray
    entry_actions: Tuple[str, ...]
    shadowed: bool

    @classmethod
    def from_match_order(
        cls,
        key_width: int,
        allowed: np.ndarray,
        entry_ids: Sequence[int],
        priorities: Sequence[int],
        actions: Sequence[str],
        *,
        shadowed: bool,
    ) -> "CompiledTable":
        """Build from an ``(E, key_width, 256)`` allowed-byte matrix."""
        count = len(entry_ids)
        words = max(1, -(-count // 64))
        luts = np.zeros((key_width, 256, words), dtype=np.uint64)
        if count:
            for j in range(key_width):
                luts[j] = _pack_words(allowed[:, j, :].T, words)
        padded_ids = np.full(words * 64, -1, dtype=np.int64)
        padded_ids[:count] = np.asarray(entry_ids, dtype=np.int64)
        padded_pri = np.zeros(words * 64, dtype=np.int64)
        padded_pri[:count] = np.asarray(priorities, dtype=np.int64)
        return cls(
            key_width=key_width,
            entries=count,
            words=words,
            luts=luts,
            entry_ids=padded_ids,
            priorities=padded_pri,
            entry_actions=tuple(actions),
            shadowed=shadowed,
        )

    def classify(
        self, keys: np.ndarray, *, count_shadows: bool = False
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
        """Resolve a normalised ``(n, key_width)`` key matrix.

        Returns ``(hit, slot, entry_id, priority, shadow_hits)`` where
        ``slot`` is the match-order index of the winning entry (0 on
        miss — callers must mask with ``hit``).
        """
        n = len(keys)
        if self.entries == 0 or n == 0:
            zeros = np.zeros(n, dtype=np.int64)
            return (
                np.zeros(n, dtype=bool),
                zeros,
                np.full(n, -1, dtype=np.int64),
                zeros.copy(),
                0,
            )
        # One gather per selected byte, intersected into survivor masks.
        survivors = self.luts[0][keys[:, 0]]
        for j in range(1, self.key_width):
            survivors &= self.luts[j][keys[:, j]]
        nonzero = survivors != 0
        hit = nonzero.any(axis=1)
        # First entry in match order == lowest set bit overall: locate
        # the first nonzero word, then its least significant set bit.
        first_word = nonzero.argmax(axis=1)
        row_words = survivors[np.arange(n), first_word]
        isolated = row_words & (~row_words + np.uint64(1))
        # log2 of an exact power of two (or of the miss placeholder 1)
        # is exact in float64 up to 2**63.
        isolated = np.where(hit, isolated, np.uint64(1))
        bit = np.log2(isolated.astype(np.float64)).astype(np.int64)
        slot = first_word * 64 + bit
        entry_id = np.where(hit, self.entry_ids[slot], -1)
        priority = np.where(hit, self.priorities[slot], 0)
        shadow_hits = 0
        if count_shadows and self.shadowed:
            matches = (
                _POPCOUNT8[survivors.view(np.uint8)]
                .reshape(n, -1)
                .sum(axis=1, dtype=np.int64)
            )
            shadow_hits = int((matches >= 2).sum())
        return hit, slot, entry_id, priority, shadow_hits


def _allowed_value_mask(
    values: np.ndarray, masks: np.ndarray
) -> np.ndarray:
    """``(E, width, 256)`` allowed bytes for value/mask entries."""
    wide_masks = masks[:, :, None]
    return (_BYTES[None, None, :] & wide_masks) == (
        (values & masks)[:, :, None]
    )


def compile_table(table) -> Optional[CompiledTable]:
    """Compile one table to LUT bitmaps; ``None`` for unknown kinds."""
    width = table.key_width
    if isinstance(table, TernaryTable):
        records = table.entries()  # already in match order
        if not records:
            return CompiledTable.from_match_order(
                width, np.zeros((0, width, 256), dtype=bool),
                [], [], [], shadowed=True,
            )
        values = np.array([r.value for r in records], dtype=np.uint8)
        masks = np.array([r.mask for r in records], dtype=np.uint8)
        return CompiledTable.from_match_order(
            width,
            _allowed_value_mask(values.reshape(-1, width),
                                masks.reshape(-1, width)),
            [r.entry_id for r in records],
            [r.priority for r in records],
            [r.action for r in records],
            shadowed=True,
        )
    if isinstance(table, RangeTable):
        records = table._entries  # priority-sorted match order
        bounds = np.array(
            [r.ranges for r in records], dtype=np.int64
        ).reshape(len(records), width, 2)
        wide = _BYTES.astype(np.int64)[None, None, :]
        allowed = (wide >= bounds[:, :, 0:1]) & (wide <= bounds[:, :, 1:2])
        return CompiledTable.from_match_order(
            width,
            allowed,
            [r.entry_id for r in records],
            [r.priority for r in records],
            [r.action for r in records],
            shadowed=True,
        )
    if isinstance(table, ExactTable):
        items = list(table._entries.items())
        values = np.array(
            [key for key, __ in items], dtype=np.uint8
        ).reshape(len(items), width)
        masks = np.full_like(values, 0xFF)
        return CompiledTable.from_match_order(
            width,
            _allowed_value_mask(values, masks),
            [eid for __, (eid, __a) in items],
            [0] * len(items),
            [action for __, (__e, action) in items],
            shadowed=False,
        )
    if isinstance(table, LpmTable):
        total_bits = 8 * width
        values: List[Tuple[int, ...]] = []
        masks_list: List[np.ndarray] = []
        ids: List[int] = []
        actions: List[str] = []
        # Longest prefix first == match order (one match per length max).
        for prefix_len in sorted(table._by_length, reverse=True):
            mask = table._prefix_mask(prefix_len)
            for value, (entry_id, action) in table._by_length[prefix_len].items():
                full = (
                    (value << (total_bits - prefix_len)) if prefix_len else 0
                ).to_bytes(width, "big")
                values.append(tuple(full))
                masks_list.append(mask)
                ids.append(entry_id)
                actions.append(action)
        value_matrix = np.array(values, dtype=np.uint8).reshape(len(ids), width)
        mask_matrix = (
            np.array(masks_list, dtype=np.uint8).reshape(len(ids), width)
            if ids
            else np.zeros((0, width), dtype=np.uint8)
        )
        return CompiledTable.from_match_order(
            width,
            _allowed_value_mask(value_matrix, mask_matrix),
            ids,
            [0] * len(ids),
            actions,
            shadowed=False,
        )
    return None


class CompiledClassifier:
    """Compiled programs for a switch pipeline, with staleness tracking.

    Holds one :class:`CompiledTable` per compilable pipeline table,
    keyed by table identity, plus the table ``generation`` captured at
    compile time.  :meth:`stale` is a cheap per-batch check (one int
    compare per table); any entry install/remove moves a generation
    and invalidates the whole program.

    Telemetry (``docs/OBSERVABILITY.md``, "Compiled classification"):
    ``compiled_compile_seconds`` / ``compiled_generation`` /
    ``compiled_tables`` / ``compiled_entries`` on each compile,
    ``compiled_batches_total`` per compiled batch lookup,
    ``compiled_fallbacks_total`` when an uncompilable table falls back
    to its vectorised path, and ``compiled_recompiles_total`` when a
    stale program is rebuilt.
    """

    def __init__(self) -> None:
        self.generation = 0
        self._programs: Dict[int, Optional[CompiledTable]] = {}
        self._signature: Tuple[Tuple[int, int], ...] = ()
        self._capture_obs()

    def _capture_obs(self) -> None:
        registry = obs.registry()
        self._obs_gen = _obs_state.generation()
        self._obs_on = registry.enabled
        self._obs_compile_seconds = registry.histogram(
            "compiled_compile_seconds", unit="s",
            help="wall-clock seconds per rule-set compile pass",
        )
        self._obs_generation = registry.gauge(
            "compiled_generation",
            help="active compiled-program generation (bumps per compile)",
        )
        self._obs_tables = registry.gauge(
            "compiled_tables",
            help="pipeline tables covered by the active compiled program",
        )
        self._obs_entries = registry.gauge(
            "compiled_entries",
            help="total entries baked into the active compiled program",
        )
        self._obs_batches = registry.counter(
            "compiled_batches_total",
            help="table batch lookups served by the compiled LUT path",
        )
        self._obs_fallbacks = registry.counter(
            "compiled_fallbacks_total",
            help="batch lookups that fell back to the vectorised path "
            "(table kind not compiled)",
        )
        self._obs_recompiles = registry.counter(
            "compiled_recompiles_total",
            help="stale-program rebuilds triggered by entry churn",
        )

    def _sync_obs(self) -> None:
        if _obs_state._generation != self._obs_gen:
            self._capture_obs()

    def compile(self, tables: Sequence) -> CompileReport:
        """(Re)compile every table; returns a :class:`CompileReport`."""
        self._sync_obs()
        start = time.perf_counter()
        programs: Dict[int, Optional[CompiledTable]] = {}
        entries = 0
        words = 0
        compiled = 0
        for table in tables:
            program = compile_table(table)
            programs[id(table)] = program
            if program is not None:
                compiled += 1
                entries += program.entries
                words += program.words
        seconds = time.perf_counter() - start
        self._programs = programs
        self._signature = tuple(
            (id(table), table.generation) for table in tables
        )
        self.generation += 1
        if self._obs_on:
            self._obs_compile_seconds.observe(seconds)
            self._obs_generation.set(self.generation)
            self._obs_tables.set(compiled)
            self._obs_entries.set(entries)
        return CompileReport(
            generation=self.generation,
            tables=len(programs),
            compiled_tables=compiled,
            entries=entries,
            words=words,
            seconds=seconds,
        )

    def stale(self, tables: Sequence) -> bool:
        """Whether any pipeline table mutated since the last compile."""
        return self._signature != tuple(
            (id(table), table.generation) for table in tables
        )

    def refresh(self, tables: Sequence) -> Optional[CompileReport]:
        """Recompile iff stale; returns the report when it did."""
        if not self.stale(tables):
            return None
        self._sync_obs()
        if self._obs_on and self._signature:
            self._obs_recompiles.inc()
        return self.compile(tables)

    def program_for(self, table) -> Optional[CompiledTable]:
        """The compiled form of ``table`` (``None`` = fallback)."""
        return self._programs.get(id(table))

    def lookup_batch(
        self, table, keys: np.ndarray, packet_sizes: Optional[np.ndarray] = None
    ) -> BatchMatchResult:
        """Drop-in for ``table.lookup_batch`` via the compiled program.

        Validates inputs with the table's own helpers and funnels the
        result through ``table._count_batch``, so direct counters and
        aggregate telemetry stay bit-identical to the oracle paths.
        """
        program = self._programs.get(id(table))
        if program is None:
            self._sync_obs()
            if self._obs_on:
                self._obs_fallbacks.inc()
            return table.lookup_batch(keys, packet_sizes=packet_sizes)
        keys = table._check_batch_keys(keys)
        sizes = table._batch_sizes(len(keys), packet_sizes)
        if program.entries == 0:
            return table._miss_batch(len(keys), sizes)
        hit, slot, entry_id, priority, shadow_hits = program.classify(
            keys, count_shadows=table._obs_on
        )
        if self._obs_on:
            self._obs_batches.inc()
        if table._obs_on and shadow_hits:
            table._obs_shadow.inc(shadow_hits)
        result = BatchMatchResult(
            hit=hit,
            entry_id=entry_id,
            action_code=np.where(hit, slot + 1, 0),
            actions=(table.default_action,) + program.entry_actions,
            priority=priority,
        )
        table._count_batch(result, sizes)
        return result
