"""Match-action tables with P4 semantics.

Each table matches a fixed-width key (a tuple of bytes extracted by the
switch parser) and returns an action name.  Faithful to hardware behaviour
where it matters for the evaluation:

* **capacity limits** — inserting beyond ``max_entries`` raises
  :class:`TableFullError` (the E5 resource experiment relies on this),
* **priorities** — ternary/range overlap resolved by explicit priority,
  ties by earlier insertion (the P4Runtime convention),
* **per-entry hit counters** — direct counters as in P4 ``direct_counter``.

Beyond the per-entry direct counters, every table also reports
aggregate telemetry through :mod:`repro.obs` when observability is
enabled: ``table_lookups_total`` / ``table_hits_total`` /
``table_misses_total`` counters, a ``table_entries`` occupancy gauge,
and — for the priority-ordered kinds (ternary/range) —
``table_shadow_hits_total``, counting lookups whose winning entry
shadowed at least one other matching entry, plus a static
``table_capacity_entries`` gauge so occupancy alerts can be expressed
as a ratio.  Instruments resolve the *active* default registry lazily:
each table caches its handles and re-captures them whenever the
registry generation changes (one int compare per lookup in the steady
state), so a table built before ``use_registry(...)`` still reports
into the scoped registry.  With observability disabled (the default)
the handles are shared no-ops and the shadow scan is skipped entirely,
so the hot lookup paths pay one branch.

Every table has two lookup implementations with identical semantics:

* :meth:`lookup` — the scalar reference path, one key at a time, written
  for clarity and used as the oracle by the differential test suite;
* :meth:`lookup_batch` — a numpy-vectorised path over an
  ``(n_packets, key_width)`` uint8 key matrix, used by
  :meth:`repro.dataplane.switch.Switch.process_batch`.  Counters are
  updated in aggregate so both paths leave the table in the same state.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
import repro.obs.registry  # noqa: F401  (module handle resolved below)
import sys

# See switch.py: the package rebinds `repro.obs.registry` to a function.
_obs_state = sys.modules["repro.obs.registry"]

__all__ = [
    "TableFullError",
    "EntryExistsError",
    "MatchResult",
    "BatchMatchResult",
    "ExactTable",
    "TernaryTable",
    "RangeTable",
    "LpmTable",
]


class TableFullError(RuntimeError):
    """Raised when a table has no free entries."""


class EntryExistsError(ValueError):
    """Raised when adding a duplicate exact/LPM key."""


@dataclasses.dataclass
class MatchResult:
    """Outcome of a table lookup."""

    hit: bool
    action: str
    entry_id: Optional[int] = None
    priority: int = 0


@dataclasses.dataclass
class BatchMatchResult:
    """Vectorised outcome of :meth:`lookup_batch` over ``n`` keys.

    Attributes:
        hit: ``(n,)`` bool — whether each key hit an entry.
        entry_id: ``(n,)`` int64 — the matched entry id, ``-1`` on miss.
        action_code: ``(n,)`` int64 — index into :attr:`actions`.
        actions: code → action name; code 0 is always the table's
            default action (applied on miss).
        priority: ``(n,)`` int64 — matched entry priority (0 on miss /
            for priority-less table kinds).
    """

    hit: np.ndarray
    entry_id: np.ndarray
    action_code: np.ndarray
    actions: Tuple[str, ...]
    priority: np.ndarray

    def action_names(self) -> np.ndarray:
        """Per-key action names as an object array."""
        return np.array(self.actions, dtype=object)[self.action_code]


def _keys_as_strings(keys: np.ndarray) -> np.ndarray:
    """View an ``(n, k)`` uint8 matrix as ``(n,)`` fixed-width byte strings.

    All rows are exactly ``k`` bytes, so numpy's trailing-NUL-padded ``S``
    comparison is exact equality on the rows — this is what makes the
    sorted-array hash-join in :meth:`ExactTable.lookup_batch` and the
    per-length buckets in :meth:`LpmTable.lookup_batch` correct.
    """
    keys = np.ascontiguousarray(keys, dtype=np.uint8)
    width = keys.shape[1]
    return np.frombuffer(keys.tobytes(), dtype=f"S{width}")


@dataclasses.dataclass
class _Counter:
    packets: int = 0
    bytes: int = 0

    def bump(self, size: int) -> None:
        self.packets += 1
        self.bytes += size


class _BaseTable:
    """Shared bookkeeping: capacity, default action, counters."""

    def __init__(
        self,
        name: str,
        key_width: int,
        *,
        max_entries: int = 1024,
        default_action: str = "allow",
    ):
        if key_width < 1:
            raise ValueError("key_width must be >= 1")
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.name = name
        self.key_width = key_width
        self.max_entries = max_entries
        self.default_action = default_action
        self.counters: Dict[int, _Counter] = {}
        self.default_counter = _Counter()
        self._next_id = 0
        #: monotone entry-mutation counter — every install/remove bumps
        #: it, so cached derivations (the per-table batch index here,
        #: the LUT programs in :mod:`repro.dataplane.compiled`) can
        #: detect staleness with one int compare.
        self.generation = 0
        #: lazily-built vectorised index; dropped on any entry mutation
        self._batch_cache: Optional[dict] = None
        self._capture_obs()

    def _capture_obs(self) -> None:
        """(Re)resolve the active default registry and cache instruments.

        Called from ``__init__`` and from :meth:`_sync_obs` whenever the
        registry generation moves, so tables built outside a
        ``use_registry(...)`` scope still report into it (see module
        docstring).
        """
        registry = obs.registry()
        self._obs_gen = _obs_state.generation()
        self._obs_on = registry.enabled
        name = self.name
        labels = {"table": name}
        self._obs_lookups = registry.counter(
            "table_lookups_total", labels,
            help="keys looked up in this match-action table",
        )
        self._obs_hits = registry.counter(
            "table_hits_total", labels,
            help="lookups that matched an installed entry",
        )
        self._obs_misses = registry.counter(
            "table_misses_total", labels,
            help="lookups that fell through to the default action",
        )
        self._obs_shadow = registry.counter(
            "table_shadow_hits_total", labels,
            help="hits whose winner shadowed >=1 other matching entry "
            "(ternary/range kinds only)",
        )
        self._obs_entries = registry.gauge(
            "table_entries", labels, help="installed entries in the table"
        )
        capacity = registry.gauge(
            "table_capacity_entries", labels,
            help="configured max_entries for the table (static; pairs "
            "with table_entries for occupancy-ratio alerts)",
        )
        if self._obs_on:
            capacity.set(self.max_entries)
            try:
                self._obs_entries.set(len(self))
            except (AttributeError, NotImplementedError):
                pass  # first capture runs before subclass storage exists

    def _sync_obs(self) -> None:
        # One int compare in the steady state; see registry._generation.
        if _obs_state._generation != self._obs_gen:
            self._capture_obs()

    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def free_entries(self) -> int:
        return self.max_entries - len(self)

    def _allocate_id(self) -> int:
        if len(self) >= self.max_entries:
            raise TableFullError(
                f"table {self.name!r} is full ({self.max_entries} entries)"
            )
        self._next_id += 1
        self.counters[self._next_id] = _Counter()
        return self._next_id

    def _check_key(self, key: Sequence[int]) -> Tuple[int, ...]:
        # _sync_obs inlined: first call on every scalar lookup/add path,
        # so skip the method-call overhead and do just the compare.
        if _obs_state._generation != self._obs_gen:
            self._capture_obs()
        key = tuple(int(b) for b in key)
        if len(key) != self.key_width:
            raise ValueError(
                f"table {self.name!r}: key width {len(key)} != {self.key_width}"
            )
        if any(not 0 <= b <= 255 for b in key):
            raise ValueError("key bytes must be in [0, 255]")
        return key

    def _count(self, result: MatchResult, packet_size: int) -> None:
        """Bump the direct counter for a scalar lookup outcome."""
        if result.hit and result.entry_id is not None:
            self.counters[result.entry_id].bump(packet_size)
        else:
            self.default_counter.bump(packet_size)
        if self._obs_on:
            self._obs_lookups.inc()
            (self._obs_hits if result.hit else self._obs_misses).inc()

    def hit_count(self, entry_id: int) -> int:
        """Packets that hit ``entry_id`` so far."""
        return self.counters[entry_id].packets

    # -- vectorised path ---------------------------------------------------

    def _invalidate_batch(self) -> None:
        """Drop the vectorised index (and refresh the occupancy gauge).

        Called after every entry mutation, which makes it the single
        choke point where ``table_entries`` can be kept current and
        where :attr:`generation` advances.
        """
        self.generation += 1
        self._batch_cache = None
        self._sync_obs()
        if self._obs_on:
            self._obs_entries.set(len(self))

    def _check_batch_keys(self, keys: np.ndarray) -> np.ndarray:
        """Validate and normalise an ``(n, key_width)`` key matrix."""
        self._sync_obs()  # first call on every lookup_batch path
        keys = np.asarray(keys)
        if keys.ndim != 2 or keys.shape[1] != self.key_width:
            raise ValueError(
                f"table {self.name!r}: key matrix must be (n, {self.key_width}), "
                f"got {keys.shape}"
            )
        if keys.dtype != np.uint8:
            if keys.size and (keys.min() < 0 or keys.max() > 255):
                raise ValueError("key bytes must be in [0, 255]")
            keys = keys.astype(np.uint8)
        return np.ascontiguousarray(keys)

    def _batch_sizes(self, n: int, packet_sizes) -> np.ndarray:
        if packet_sizes is None:
            return np.zeros(n, dtype=np.int64)
        sizes = np.asarray(packet_sizes, dtype=np.int64)
        if sizes.shape != (n,):
            raise ValueError(f"packet_sizes must be ({n},), got {sizes.shape}")
        return sizes

    def _count_batch(self, result: BatchMatchResult, sizes: np.ndarray) -> None:
        """Aggregate-counter equivalent of per-key :meth:`_count` calls."""
        if self._obs_on:
            n = len(result.hit)
            hits = int(result.hit.sum())
            self._obs_lookups.inc(n)
            self._obs_hits.inc(hits)
            self._obs_misses.inc(n - hits)
        miss = ~result.hit
        if miss.any():
            self.default_counter.packets += int(miss.sum())
            self.default_counter.bytes += int(sizes[miss].sum())
        hit_ids = result.entry_id[result.hit]
        if hit_ids.size:
            hit_sizes = sizes[result.hit]
            for entry_id, count in zip(*np.unique(hit_ids, return_counts=True)):
                counter = self.counters[int(entry_id)]
                counter.packets += int(count)
                counter.bytes += int(hit_sizes[hit_ids == entry_id].sum())

    def _miss_batch(self, n: int, sizes: np.ndarray) -> BatchMatchResult:
        """All-miss result (the empty-table fast path)."""
        result = BatchMatchResult(
            hit=np.zeros(n, dtype=bool),
            entry_id=np.full(n, -1, dtype=np.int64),
            action_code=np.zeros(n, dtype=np.int64),
            actions=(self.default_action,),
            priority=np.zeros(n, dtype=np.int64),
        )
        self._count_batch(result, sizes)
        return result

    def lookup_batch(
        self, keys: np.ndarray, packet_sizes: Optional[np.ndarray] = None
    ) -> BatchMatchResult:
        """Vectorised :meth:`lookup` over an ``(n, key_width)`` matrix."""
        raise NotImplementedError


class ExactTable(_BaseTable):
    """Exact match on the whole key (hash-table in hardware)."""

    def __init__(self, name: str, key_width: int, **kwargs):
        super().__init__(name, key_width, **kwargs)
        self._entries: Dict[Tuple[int, ...], Tuple[int, str]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, key: Sequence[int], action: str) -> int:
        """Install an exact-match entry; returns its entry id."""
        key = self._check_key(key)
        if key in self._entries:
            raise EntryExistsError(f"duplicate exact key {key}")
        entry_id = self._allocate_id()
        self._entries[key] = (entry_id, action)
        self._invalidate_batch()
        return entry_id

    def remove(self, entry_id: int) -> None:
        """Delete an entry (and its counter) by id."""
        for key, (eid, __) in list(self._entries.items()):
            if eid == entry_id:
                del self._entries[key]
                del self.counters[entry_id]
                self._invalidate_batch()
                return
        raise KeyError(f"no entry {entry_id}")

    def lookup(self, key: Sequence[int], packet_size: int = 0) -> MatchResult:
        """Exact hash lookup, bumping the matched/default direct counter."""
        key = self._check_key(key)
        found = self._entries.get(key)
        if found is None:
            result = MatchResult(False, self.default_action)
        else:
            result = MatchResult(True, found[1], entry_id=found[0])
        self._count(result, packet_size)
        return result

    def _batch_index(self) -> dict:
        """Sorted entry-key strings + aligned id/action arrays (hash join)."""
        if self._batch_cache is None:
            key_matrix = np.array(
                sorted(self._entries), dtype=np.uint8
            ).reshape(len(self._entries), self.key_width)
            entry_keys = _keys_as_strings(key_matrix)
            order = np.argsort(entry_keys)
            items = [self._entries[tuple(row)] for row in key_matrix[order]]
            self._batch_cache = {
                "keys": entry_keys[order],
                "entry_ids": np.array([eid for eid, __ in items], dtype=np.int64),
                "entry_actions": tuple(action for __, action in items),
            }
        return self._batch_cache

    def lookup_batch(
        self, keys: np.ndarray, packet_sizes: Optional[np.ndarray] = None
    ) -> BatchMatchResult:
        keys = self._check_batch_keys(keys)
        sizes = self._batch_sizes(len(keys), packet_sizes)
        if not self._entries:
            return self._miss_batch(len(keys), sizes)
        index = self._batch_index()
        sorted_keys = index["keys"]
        rows = _keys_as_strings(keys)
        positions = np.searchsorted(sorted_keys, rows)
        clipped = np.minimum(positions, len(sorted_keys) - 1)
        hit = sorted_keys[clipped] == rows
        entry_id = np.where(hit, index["entry_ids"][clipped], -1)
        # action code 0 = default; entry e maps to code 1 + its sorted slot
        action_code = np.where(hit, clipped + 1, 0)
        result = BatchMatchResult(
            hit=hit,
            entry_id=entry_id,
            action_code=action_code,
            actions=(self.default_action,) + index["entry_actions"],
            priority=np.zeros(len(keys), dtype=np.int64),
        )
        self._count_batch(result, sizes)
        return result


@dataclasses.dataclass
class _TernaryEntryRecord:
    entry_id: int
    value: Tuple[int, ...]
    mask: Tuple[int, ...]
    priority: int
    action: str
    order: int  # insertion order, used as the tie-break


class TernaryTable(_BaseTable):
    """TCAM-style value/mask match with priorities.

    Overlap resolution is part of the table's contract, not an
    implementation accident, because three independent implementations
    (the scalar scan here, the broadcast ``lookup_batch``, and the LUT
    program in :mod:`repro.dataplane.compiled`) must agree bit for bit:

    * the highest ``priority`` wins among matching entries;
    * **equal priorities tie-break by insertion order** — the earliest
      ``add`` wins, the P4Runtime convention.  The tie-break follows
      the per-table ``add`` sequence (``_order``), *not* entry ids, and
      survives interleaved removes: re-adding an entry puts it at the
      back of its priority band.

    ``tests/test_tables.py::TestTernaryTieBreak`` locks this contract
    across all three paths.
    """

    def __init__(self, name: str, key_width: int, **kwargs):
        super().__init__(name, key_width, **kwargs)
        self._entries: List[_TernaryEntryRecord] = []
        self._order = 0

    def __len__(self) -> int:
        return len(self._entries)

    def add(
        self,
        value: Sequence[int],
        mask: Sequence[int],
        action: str,
        *,
        priority: int = 0,
    ) -> int:
        """Install a value/mask entry; higher ``priority`` wins overlaps."""
        value = self._check_key(value)
        mask = self._check_key(mask)
        entry_id = self._allocate_id()
        self._order += 1
        record = _TernaryEntryRecord(
            entry_id, value, mask, priority, action, self._order
        )
        self._entries.append(record)
        # Keep sorted: higher priority first, then earlier insertion.
        self._entries.sort(key=lambda e: (-e.priority, e.order))
        self._invalidate_batch()
        return entry_id

    def remove(self, entry_id: int) -> None:
        """Delete an entry (and its counter) by id."""
        for index, record in enumerate(self._entries):
            if record.entry_id == entry_id:
                del self._entries[index]
                del self.counters[entry_id]
                self._invalidate_batch()
                return
        raise KeyError(f"no entry {entry_id}")

    def clear(self) -> None:
        """Remove every entry and counter at once (controller rollbacks)."""
        self._entries.clear()
        self.counters.clear()
        self._invalidate_batch()

    @staticmethod
    def _matches(key, record) -> bool:
        """Scalar value/mask match of one key against one entry."""
        return all(
            (k & m) == (v & m)
            for k, v, m in zip(key, record.value, record.mask)
        )

    def lookup(self, key: Sequence[int], packet_size: int = 0) -> MatchResult:
        """First match in priority order, bumping its direct counter."""
        key = self._check_key(key)
        for index, record in enumerate(self._entries):
            if self._matches(key, record):
                result = MatchResult(
                    True, record.action, entry_id=record.entry_id,
                    priority=record.priority,
                )
                self._count(result, packet_size)
                # The shadow scan looks past the winner, so it only runs
                # with observability on; verdicts are unaffected.
                if self._obs_on and any(
                    self._matches(key, later)
                    for later in self._entries[index + 1 :]
                ):
                    self._obs_shadow.inc()
                return result
        result = MatchResult(False, self.default_action)
        self._count(result, packet_size)
        return result

    def _batch_index(self) -> dict:
        """Priority-sorted value/mask matrices for mask-and-compare."""
        if self._batch_cache is None:
            count = len(self._entries)
            values = np.array(
                [e.value for e in self._entries], dtype=np.uint8
            ).reshape(count, self.key_width)
            masks = np.array(
                [e.mask for e in self._entries], dtype=np.uint8
            ).reshape(count, self.key_width)
            self._batch_cache = {
                "masks": masks,
                # pre-masked values: a key k matches row e iff k & mask == this
                "masked_values": values & masks,
                "entry_ids": np.array(
                    [e.entry_id for e in self._entries], dtype=np.int64
                ),
                "priorities": np.array(
                    [e.priority for e in self._entries], dtype=np.int64
                ),
                "entry_actions": tuple(e.action for e in self._entries),
            }
        return self._batch_cache

    def lookup_batch(
        self, keys: np.ndarray, packet_sizes: Optional[np.ndarray] = None
    ) -> BatchMatchResult:
        keys = self._check_batch_keys(keys)
        sizes = self._batch_sizes(len(keys), packet_sizes)
        if not self._entries:
            return self._miss_batch(len(keys), sizes)
        index = self._batch_index()
        # (n, entries, width) mask-and-compare, collapsed over key bytes;
        # entries are already in match order, so argmax gives the winner.
        matches = (
            (keys[:, None, :] & index["masks"][None, :, :])
            == index["masked_values"][None, :, :]
        ).all(axis=2)
        hit = matches.any(axis=1)
        if self._obs_on:
            self._obs_shadow.inc(int((matches.sum(axis=1) >= 2).sum()))
        winner = matches.argmax(axis=1)
        entry_id = np.where(hit, index["entry_ids"][winner], -1)
        action_code = np.where(hit, winner + 1, 0)
        result = BatchMatchResult(
            hit=hit,
            entry_id=entry_id,
            action_code=action_code,
            actions=(self.default_action,) + index["entry_actions"],
            priority=np.where(hit, index["priorities"][winner], 0),
        )
        self._count_batch(result, sizes)
        return result

    def entries(self) -> List[_TernaryEntryRecord]:
        """Current entries in match order (for inspection/tests)."""
        return list(self._entries)

    def tcam_bits(self) -> int:
        """TCAM cost: 2 × key bits × entries (value and mask both stored)."""
        return 2 * 8 * self.key_width * len(self._entries)


@dataclasses.dataclass
class _RangeEntryRecord:
    entry_id: int
    ranges: Tuple[Tuple[int, int], ...]
    priority: int
    action: str
    order: int


class RangeTable(_BaseTable):
    """Per-byte range match with priorities (Tofino range match units)."""

    def __init__(self, name: str, key_width: int, **kwargs):
        super().__init__(name, key_width, **kwargs)
        self._entries: List[_RangeEntryRecord] = []
        self._order = 0

    def __len__(self) -> int:
        return len(self._entries)

    def add(
        self,
        ranges: Sequence[Tuple[int, int]],
        action: str,
        *,
        priority: int = 0,
    ) -> int:
        """Install per-byte ``[lo, hi]`` ranges; ``priority`` breaks overlaps."""
        if len(ranges) != self.key_width:
            raise ValueError(
                f"table {self.name!r}: {len(ranges)} ranges != width {self.key_width}"
            )
        for lo, hi in ranges:
            if not 0 <= lo <= hi <= 255:
                raise ValueError(f"invalid byte range [{lo}, {hi}]")
        entry_id = self._allocate_id()
        self._order += 1
        self._entries.append(
            _RangeEntryRecord(
                entry_id, tuple((int(l), int(h)) for l, h in ranges),
                priority, action, self._order,
            )
        )
        self._entries.sort(key=lambda e: (-e.priority, e.order))
        self._invalidate_batch()
        return entry_id

    def remove(self, entry_id: int) -> None:
        for index, record in enumerate(self._entries):
            if record.entry_id == entry_id:
                del self._entries[index]
                del self.counters[entry_id]
                self._invalidate_batch()
                return
        raise KeyError(f"no entry {entry_id}")

    @staticmethod
    def _matches(key, record) -> bool:
        """Scalar per-byte interval match of one key against one entry."""
        return all(lo <= k <= hi for k, (lo, hi) in zip(key, record.ranges))

    def lookup(self, key: Sequence[int], packet_size: int = 0) -> MatchResult:
        """First match in priority order, bumping its direct counter."""
        key = self._check_key(key)
        for index, record in enumerate(self._entries):
            if self._matches(key, record):
                result = MatchResult(
                    True, record.action, entry_id=record.entry_id,
                    priority=record.priority,
                )
                self._count(result, packet_size)
                if self._obs_on and any(
                    self._matches(key, later)
                    for later in self._entries[index + 1 :]
                ):
                    self._obs_shadow.inc()
                return result
        result = MatchResult(False, self.default_action)
        self._count(result, packet_size)
        return result

    def _batch_index(self) -> dict:
        """Priority-sorted per-byte interval bounds for broadcast tests."""
        if self._batch_cache is None:
            count = len(self._entries)
            bounds = np.array(
                [e.ranges for e in self._entries], dtype=np.int64
            ).reshape(count, self.key_width, 2)
            self._batch_cache = {
                "lows": bounds[:, :, 0],
                "highs": bounds[:, :, 1],
                "entry_ids": np.array(
                    [e.entry_id for e in self._entries], dtype=np.int64
                ),
                "priorities": np.array(
                    [e.priority for e in self._entries], dtype=np.int64
                ),
                "entry_actions": tuple(e.action for e in self._entries),
            }
        return self._batch_cache

    def lookup_batch(
        self, keys: np.ndarray, packet_sizes: Optional[np.ndarray] = None
    ) -> BatchMatchResult:
        keys = self._check_batch_keys(keys)
        sizes = self._batch_sizes(len(keys), packet_sizes)
        if not self._entries:
            return self._miss_batch(len(keys), sizes)
        index = self._batch_index()
        # (n, entries, width) broadcast interval tests over the byte columns.
        wide = keys[:, None, :].astype(np.int64)
        matches = (
            (wide >= index["lows"][None, :, :])
            & (wide <= index["highs"][None, :, :])
        ).all(axis=2)
        hit = matches.any(axis=1)
        if self._obs_on:
            self._obs_shadow.inc(int((matches.sum(axis=1) >= 2).sum()))
        winner = matches.argmax(axis=1)
        entry_id = np.where(hit, index["entry_ids"][winner], -1)
        action_code = np.where(hit, winner + 1, 0)
        result = BatchMatchResult(
            hit=hit,
            entry_id=entry_id,
            action_code=action_code,
            actions=(self.default_action,) + index["entry_actions"],
            priority=np.where(hit, index["priorities"][winner], 0),
        )
        self._count_batch(result, sizes)
        return result


class LpmTable(_BaseTable):
    """Longest-prefix match over the concatenated key bits."""

    def __init__(self, name: str, key_width: int, **kwargs):
        super().__init__(name, key_width, **kwargs)
        # prefix_len -> {prefix_bits_int: (entry_id, action)}
        self._by_length: Dict[int, Dict[int, Tuple[int, str]]] = {}

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_length.values())

    def add(self, key: Sequence[int], prefix_len: int, action: str) -> int:
        """Install a ``key/prefix_len`` route; longest prefix wins lookups."""
        key = self._check_key(key)
        total_bits = 8 * self.key_width
        if not 0 <= prefix_len <= total_bits:
            raise ValueError(f"prefix_len {prefix_len} out of [0, {total_bits}]")
        value = int.from_bytes(bytes(key), "big") >> (total_bits - prefix_len) if prefix_len else 0
        bucket = self._by_length.setdefault(prefix_len, {})
        if value in bucket:
            raise EntryExistsError(f"duplicate prefix {value}/{prefix_len}")
        entry_id = self._allocate_id()
        bucket[value] = (entry_id, action)
        self._invalidate_batch()
        return entry_id

    def remove(self, entry_id: int) -> None:
        for bucket in self._by_length.values():
            for value, (eid, __) in list(bucket.items()):
                if eid == entry_id:
                    del bucket[value]
                    del self.counters[entry_id]
                    self._invalidate_batch()
                    return
        raise KeyError(f"no entry {entry_id}")

    def lookup(self, key: Sequence[int], packet_size: int = 0) -> MatchResult:
        """Longest-prefix scalar lookup, bumping direct counters."""
        key = self._check_key(key)
        total_bits = 8 * self.key_width
        key_int = int.from_bytes(bytes(key), "big")
        for prefix_len in sorted(self._by_length, reverse=True):
            bucket = self._by_length[prefix_len]
            value = key_int >> (total_bits - prefix_len) if prefix_len else 0
            found = bucket.get(value)
            if found is not None:
                result = MatchResult(True, found[1], entry_id=found[0])
                self._count(result, packet_size)
                return result
        result = MatchResult(False, self.default_action)
        self._count(result, packet_size)
        return result

    def _prefix_mask(self, prefix_len: int) -> np.ndarray:
        """Byte mask with the leading ``prefix_len`` bits set."""
        mask = np.zeros(self.key_width, dtype=np.uint8)
        full, rem = divmod(prefix_len, 8)
        mask[:full] = 0xFF
        if rem:
            mask[full] = (0xFF << (8 - rem)) & 0xFF
        return mask

    def _batch_index(self) -> dict:
        """Per-prefix-length buckets, longest first, as sorted masked keys."""
        if self._batch_cache is None:
            total_bits = 8 * self.key_width
            buckets = []
            actions: List[str] = []
            for prefix_len in sorted(self._by_length, reverse=True):
                bucket = self._by_length[prefix_len]
                if not bucket:
                    continue
                values = np.frombuffer(
                    b"".join(
                        ((value << (total_bits - prefix_len)) if prefix_len else 0)
                        .to_bytes(self.key_width, "big")
                        for value in bucket
                    ),
                    dtype=np.uint8,
                ).reshape(len(bucket), self.key_width)
                prefixes = _keys_as_strings(values)
                order = np.argsort(prefixes)
                items = list(bucket.values())
                entry_ids = np.array(
                    [items[i][0] for i in order], dtype=np.int64
                )
                codes = np.arange(len(items), dtype=np.int64) + 1 + len(actions)
                actions.extend(items[i][1] for i in order)
                buckets.append(
                    {
                        "mask": self._prefix_mask(prefix_len),
                        "prefixes": prefixes[order],
                        "entry_ids": entry_ids,
                        "codes": codes,
                    }
                )
            self._batch_cache = {
                "buckets": buckets,
                "entry_actions": tuple(actions),
            }
        return self._batch_cache

    def lookup_batch(
        self, keys: np.ndarray, packet_sizes: Optional[np.ndarray] = None
    ) -> BatchMatchResult:
        keys = self._check_batch_keys(keys)
        n = len(keys)
        sizes = self._batch_sizes(n, packet_sizes)
        if not len(self):
            return self._miss_batch(n, sizes)
        index = self._batch_index()
        hit = np.zeros(n, dtype=bool)
        entry_id = np.full(n, -1, dtype=np.int64)
        action_code = np.zeros(n, dtype=np.int64)
        remaining = np.arange(n)
        # Longest prefix first: rows matched by a bucket stop participating,
        # exactly like the scalar descending-length scan.
        for bucket in index["buckets"]:
            if not remaining.size:
                break
            masked = _keys_as_strings(keys[remaining] & bucket["mask"])
            positions = np.searchsorted(bucket["prefixes"], masked)
            clipped = np.minimum(positions, len(bucket["prefixes"]) - 1)
            found = bucket["prefixes"][clipped] == masked
            rows = remaining[found]
            hit[rows] = True
            entry_id[rows] = bucket["entry_ids"][clipped[found]]
            action_code[rows] = bucket["codes"][clipped[found]]
            remaining = remaining[~found]
        result = BatchMatchResult(
            hit=hit,
            entry_id=entry_id,
            action_code=action_code,
            actions=(self.default_action,) + index["entry_actions"],
            priority=np.zeros(n, dtype=np.int64),
        )
        self._count_batch(result, sizes)
        return result
