"""Match-action tables with P4 semantics.

Each table matches a fixed-width key (a tuple of bytes extracted by the
switch parser) and returns an action name.  Faithful to hardware behaviour
where it matters for the evaluation:

* **capacity limits** — inserting beyond ``max_entries`` raises
  :class:`TableFullError` (the E5 resource experiment relies on this),
* **priorities** — ternary/range overlap resolved by explicit priority,
  ties by earlier insertion (the P4Runtime convention),
* **per-entry hit counters** — direct counters as in P4 ``direct_counter``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "TableFullError",
    "EntryExistsError",
    "MatchResult",
    "ExactTable",
    "TernaryTable",
    "RangeTable",
    "LpmTable",
]


class TableFullError(RuntimeError):
    """Raised when a table has no free entries."""


class EntryExistsError(ValueError):
    """Raised when adding a duplicate exact/LPM key."""


@dataclasses.dataclass
class MatchResult:
    """Outcome of a table lookup."""

    hit: bool
    action: str
    entry_id: Optional[int] = None
    priority: int = 0


@dataclasses.dataclass
class _Counter:
    packets: int = 0
    bytes: int = 0

    def bump(self, size: int) -> None:
        self.packets += 1
        self.bytes += size


class _BaseTable:
    """Shared bookkeeping: capacity, default action, counters."""

    def __init__(
        self,
        name: str,
        key_width: int,
        *,
        max_entries: int = 1024,
        default_action: str = "allow",
    ):
        if key_width < 1:
            raise ValueError("key_width must be >= 1")
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.name = name
        self.key_width = key_width
        self.max_entries = max_entries
        self.default_action = default_action
        self.counters: Dict[int, _Counter] = {}
        self.default_counter = _Counter()
        self._next_id = 0

    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def free_entries(self) -> int:
        return self.max_entries - len(self)

    def _allocate_id(self) -> int:
        if len(self) >= self.max_entries:
            raise TableFullError(
                f"table {self.name!r} is full ({self.max_entries} entries)"
            )
        self._next_id += 1
        self.counters[self._next_id] = _Counter()
        return self._next_id

    def _check_key(self, key: Sequence[int]) -> Tuple[int, ...]:
        key = tuple(int(b) for b in key)
        if len(key) != self.key_width:
            raise ValueError(
                f"table {self.name!r}: key width {len(key)} != {self.key_width}"
            )
        if any(not 0 <= b <= 255 for b in key):
            raise ValueError("key bytes must be in [0, 255]")
        return key

    def _count(self, result: MatchResult, packet_size: int) -> None:
        if result.hit and result.entry_id is not None:
            self.counters[result.entry_id].bump(packet_size)
        else:
            self.default_counter.bump(packet_size)

    def hit_count(self, entry_id: int) -> int:
        """Packets that hit ``entry_id`` so far."""
        return self.counters[entry_id].packets


class ExactTable(_BaseTable):
    """Exact match on the whole key (hash-table in hardware)."""

    def __init__(self, name: str, key_width: int, **kwargs):
        super().__init__(name, key_width, **kwargs)
        self._entries: Dict[Tuple[int, ...], Tuple[int, str]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, key: Sequence[int], action: str) -> int:
        key = self._check_key(key)
        if key in self._entries:
            raise EntryExistsError(f"duplicate exact key {key}")
        entry_id = self._allocate_id()
        self._entries[key] = (entry_id, action)
        return entry_id

    def remove(self, entry_id: int) -> None:
        for key, (eid, __) in list(self._entries.items()):
            if eid == entry_id:
                del self._entries[key]
                del self.counters[entry_id]
                return
        raise KeyError(f"no entry {entry_id}")

    def lookup(self, key: Sequence[int], packet_size: int = 0) -> MatchResult:
        key = self._check_key(key)
        found = self._entries.get(key)
        if found is None:
            result = MatchResult(False, self.default_action)
        else:
            result = MatchResult(True, found[1], entry_id=found[0])
        self._count(result, packet_size)
        return result


@dataclasses.dataclass
class _TernaryEntryRecord:
    entry_id: int
    value: Tuple[int, ...]
    mask: Tuple[int, ...]
    priority: int
    action: str
    order: int  # insertion order, used as the tie-break


class TernaryTable(_BaseTable):
    """TCAM-style value/mask match with priorities."""

    def __init__(self, name: str, key_width: int, **kwargs):
        super().__init__(name, key_width, **kwargs)
        self._entries: List[_TernaryEntryRecord] = []
        self._order = 0

    def __len__(self) -> int:
        return len(self._entries)

    def add(
        self,
        value: Sequence[int],
        mask: Sequence[int],
        action: str,
        *,
        priority: int = 0,
    ) -> int:
        value = self._check_key(value)
        mask = self._check_key(mask)
        entry_id = self._allocate_id()
        self._order += 1
        record = _TernaryEntryRecord(
            entry_id, value, mask, priority, action, self._order
        )
        self._entries.append(record)
        # Keep sorted: higher priority first, then earlier insertion.
        self._entries.sort(key=lambda e: (-e.priority, e.order))
        return entry_id

    def remove(self, entry_id: int) -> None:
        for index, record in enumerate(self._entries):
            if record.entry_id == entry_id:
                del self._entries[index]
                del self.counters[entry_id]
                return
        raise KeyError(f"no entry {entry_id}")

    def clear(self) -> None:
        self._entries.clear()
        self.counters.clear()

    def lookup(self, key: Sequence[int], packet_size: int = 0) -> MatchResult:
        key = self._check_key(key)
        for record in self._entries:
            if all(
                (k & m) == (v & m)
                for k, v, m in zip(key, record.value, record.mask)
            ):
                result = MatchResult(
                    True, record.action, entry_id=record.entry_id,
                    priority=record.priority,
                )
                self._count(result, packet_size)
                return result
        result = MatchResult(False, self.default_action)
        self._count(result, packet_size)
        return result

    def entries(self) -> List[_TernaryEntryRecord]:
        """Current entries in match order (for inspection/tests)."""
        return list(self._entries)

    def tcam_bits(self) -> int:
        """TCAM cost: 2 × key bits × entries (value and mask both stored)."""
        return 2 * 8 * self.key_width * len(self._entries)


@dataclasses.dataclass
class _RangeEntryRecord:
    entry_id: int
    ranges: Tuple[Tuple[int, int], ...]
    priority: int
    action: str
    order: int


class RangeTable(_BaseTable):
    """Per-byte range match with priorities (Tofino range match units)."""

    def __init__(self, name: str, key_width: int, **kwargs):
        super().__init__(name, key_width, **kwargs)
        self._entries: List[_RangeEntryRecord] = []
        self._order = 0

    def __len__(self) -> int:
        return len(self._entries)

    def add(
        self,
        ranges: Sequence[Tuple[int, int]],
        action: str,
        *,
        priority: int = 0,
    ) -> int:
        if len(ranges) != self.key_width:
            raise ValueError(
                f"table {self.name!r}: {len(ranges)} ranges != width {self.key_width}"
            )
        for lo, hi in ranges:
            if not 0 <= lo <= hi <= 255:
                raise ValueError(f"invalid byte range [{lo}, {hi}]")
        entry_id = self._allocate_id()
        self._order += 1
        self._entries.append(
            _RangeEntryRecord(
                entry_id, tuple((int(l), int(h)) for l, h in ranges),
                priority, action, self._order,
            )
        )
        self._entries.sort(key=lambda e: (-e.priority, e.order))
        return entry_id

    def remove(self, entry_id: int) -> None:
        for index, record in enumerate(self._entries):
            if record.entry_id == entry_id:
                del self._entries[index]
                del self.counters[entry_id]
                return
        raise KeyError(f"no entry {entry_id}")

    def lookup(self, key: Sequence[int], packet_size: int = 0) -> MatchResult:
        key = self._check_key(key)
        for record in self._entries:
            if all(lo <= k <= hi for k, (lo, hi) in zip(key, record.ranges)):
                result = MatchResult(
                    True, record.action, entry_id=record.entry_id,
                    priority=record.priority,
                )
                self._count(result, packet_size)
                return result
        result = MatchResult(False, self.default_action)
        self._count(result, packet_size)
        return result


class LpmTable(_BaseTable):
    """Longest-prefix match over the concatenated key bits."""

    def __init__(self, name: str, key_width: int, **kwargs):
        super().__init__(name, key_width, **kwargs)
        # prefix_len -> {prefix_bits_int: (entry_id, action)}
        self._by_length: Dict[int, Dict[int, Tuple[int, str]]] = {}

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_length.values())

    def add(self, key: Sequence[int], prefix_len: int, action: str) -> int:
        key = self._check_key(key)
        total_bits = 8 * self.key_width
        if not 0 <= prefix_len <= total_bits:
            raise ValueError(f"prefix_len {prefix_len} out of [0, {total_bits}]")
        value = int.from_bytes(bytes(key), "big") >> (total_bits - prefix_len) if prefix_len else 0
        bucket = self._by_length.setdefault(prefix_len, {})
        if value in bucket:
            raise EntryExistsError(f"duplicate prefix {value}/{prefix_len}")
        entry_id = self._allocate_id()
        bucket[value] = (entry_id, action)
        return entry_id

    def remove(self, entry_id: int) -> None:
        for bucket in self._by_length.values():
            for value, (eid, __) in list(bucket.items()):
                if eid == entry_id:
                    del bucket[value]
                    del self.counters[entry_id]
                    return
        raise KeyError(f"no entry {entry_id}")

    def lookup(self, key: Sequence[int], packet_size: int = 0) -> MatchResult:
        key = self._check_key(key)
        total_bits = 8 * self.key_width
        key_int = int.from_bytes(bytes(key), "big")
        for prefix_len in sorted(self._by_length, reverse=True):
            bucket = self._by_length[prefix_len]
            value = key_int >> (total_bits - prefix_len) if prefix_len else 0
            found = bucket.get(value)
            if found is not None:
                result = MatchResult(True, found[1], entry_id=found[0])
                self._count(result, packet_size)
                return result
        result = MatchResult(False, self.default_action)
        self._count(result, packet_size)
        return result
