"""Egress queueing model: what the firewall buys the LAN behind it.

A gateway's uplink to the constrained IoT LAN has finite service capacity;
attack floods that are *not* dropped at ingress occupy that queue and delay
(or tail-drop) benign traffic.  This module implements the standard
fluid/event model — single FIFO queue, deterministic per-byte service
rate, finite buffer — so the E14 benchmark can quantify benign-traffic
latency and loss with and without the learned firewall at ingress.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.net.packet import Packet

__all__ = ["EgressQueue", "QueueResult", "simulate_queue"]


@dataclasses.dataclass
class QueueResult:
    """Per-trace queueing outcome.

    Attributes:
        delays: per-forwarded-packet queueing delay in seconds (aligned
            with ``forwarded_index``).
        forwarded_index: indices (into the input trace) of packets that
            made it through the queue.
        tail_dropped_index: indices of packets lost to buffer overflow.
        ingress_dropped_index: indices dropped by the firewall before the
            queue (empty when no firewall is attached).
    """

    delays: np.ndarray
    forwarded_index: np.ndarray
    tail_dropped_index: np.ndarray
    ingress_dropped_index: np.ndarray

    def mean_delay(self) -> float:
        return float(self.delays.mean()) if self.delays.size else 0.0

    def p99_delay(self) -> float:
        if not self.delays.size:
            return 0.0
        return float(np.percentile(self.delays, 99))

    def loss_rate(self) -> float:
        total = (
            self.forwarded_index.size
            + self.tail_dropped_index.size
        )
        return self.tail_dropped_index.size / total if total else 0.0


class EgressQueue:
    """Single FIFO egress queue with byte-rate service and finite buffer.

    Args:
        rate_bytes_per_s: service capacity.
        buffer_bytes: maximum queued bytes; arrivals beyond are tail-dropped.
    """

    def __init__(self, rate_bytes_per_s: float, buffer_bytes: int = 64 * 1024):
        if rate_bytes_per_s <= 0:
            raise ValueError("service rate must be positive")
        if buffer_bytes <= 0:
            raise ValueError("buffer must be positive")
        self.rate = rate_bytes_per_s
        self.buffer_bytes = buffer_bytes

    def run(
        self,
        packets: Sequence[Packet],
        *,
        admit: Optional[Callable[[Packet], bool]] = None,
    ) -> QueueResult:
        """Run the trace through the queue (packets must be time-sorted).

        Args:
            admit: optional ingress filter; packets for which it returns
                False are counted as ingress drops and never enqueue
                (this is where the learned firewall plugs in).
        """
        times = [p.timestamp for p in packets]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("packets must be sorted by timestamp")
        delays: List[float] = []
        forwarded: List[int] = []
        tail_dropped: List[int] = []
        ingress_dropped: List[int] = []
        # State: when the server frees up, and queued bytes at that moment.
        busy_until = 0.0
        queued_bytes = 0.0
        last_time = 0.0
        for index, packet in enumerate(packets):
            now = packet.timestamp
            # Drain the queue for the elapsed time.
            drained = (now - last_time) * self.rate
            queued_bytes = max(0.0, queued_bytes - drained)
            last_time = now
            if admit is not None and not admit(packet):
                ingress_dropped.append(index)
                continue
            size = len(packet.data)
            if queued_bytes + size > self.buffer_bytes:
                tail_dropped.append(index)
                continue
            queued_bytes += size
            # Delay = time to transmit everything ahead of us + ourselves.
            delays.append(queued_bytes / self.rate)
            forwarded.append(index)
        return QueueResult(
            delays=np.array(delays),
            forwarded_index=np.array(forwarded, dtype=int),
            tail_dropped_index=np.array(tail_dropped, dtype=int),
            ingress_dropped_index=np.array(ingress_dropped, dtype=int),
        )


def simulate_queue(
    packets: Sequence[Packet],
    *,
    rate_bytes_per_s: float,
    buffer_bytes: int = 64 * 1024,
    admit: Optional[Callable[[Packet], bool]] = None,
) -> QueueResult:
    """One-shot convenience wrapper around :class:`EgressQueue`."""
    queue = EgressQueue(rate_bytes_per_s, buffer_bytes)
    return queue.run(packets, admit=admit)
