"""bmv2 JSON pipeline-configuration generation.

The behavioural-model switch (bmv2) consumes a JSON pipeline configuration
normally produced by ``p4c``.  This module emits that configuration
directly from the learned deployment — headers for the byte window, a
start-state parser, the ternary firewall table, and its runtime entries —
so the artifact can be loaded into ``simple_switch`` without running the
compiler.  Structure follows the public bmv2 JSON format (format
``version [2, 18]``); tests validate the structural invariants this module
guarantees rather than executing bmv2 (unavailable offline).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.core.rules import RuleSet

__all__ = [
    "generate_bmv2_config",
    "bmv2_runtime_entries",
    "simple_switch_cli_commands",
]

_ACTION_IDS = {"drop_packet": 0, "allow_packet": 1, "quarantine_packet": 2}


def _window_header_type(window: int) -> Dict:
    return {
        "name": "window_t",
        "id": 0,
        "fields": [[f"b{i}", 8, False] for i in range(window)],
    }


def bmv2_runtime_entries(ruleset: RuleSet) -> List[Dict]:
    """Runtime table entries in simple_switch_CLI-compatible structure."""
    entries = []
    for index, entry in enumerate(ruleset.to_ternary()):
        action = f"{entry.action}_packet"
        entries.append(
            {
                "table": "firewall",
                "match_type": "ternary",
                "match_key": [
                    {"type": "ternary", "key": f"0x{v:02x}", "mask": f"0x{m:02x}"}
                    for v, m in zip(entry.value, entry.mask)
                ],
                "action_name": action,
                "action_data": [],
                "priority": entry.priority,
                "entry_id": index,
            }
        )
    return entries


def simple_switch_cli_commands(ruleset: RuleSet) -> List[str]:
    """``simple_switch_CLI`` lines installing a rule set at runtime.

    The interactive companion to :func:`generate_bmv2_config`: paste (or
    pipe) these into ``simple_switch_CLI`` against a running bmv2 to load
    the learned rules without recompiling.  Ternary keys use bmv2's
    ``value&&&mask`` syntax; priorities are mandatory for ternary tables
    (bmv2 treats *lower* numbers as higher priority, so rule priorities
    are inverted into rank order here).
    """
    entries = ruleset.to_ternary()
    # bmv2: lower number = matched first; our entries are already in
    # match order after sorting by (-priority, insertion).
    ordered = sorted(
        range(len(entries)), key=lambda i: (-entries[i].priority, i)
    )
    lines = [
        f"table_set_default firewall {ruleset.default_action}_packet"
    ]
    for rank, index in enumerate(ordered, start=1):
        entry = entries[index]
        key = " ".join(
            f"0x{v:02x}&&&0x{m:02x}" for v, m in zip(entry.value, entry.mask)
        )
        lines.append(
            f"table_add firewall {entry.action}_packet {key} => {rank}"
        )
    return lines


def generate_bmv2_config(
    offsets: Sequence[int],
    *,
    window: Optional[int] = None,
    table_size: int = 4096,
    ruleset: Optional[RuleSet] = None,
) -> Dict:
    """Build the bmv2 JSON pipeline configuration as a Python dict.

    Args:
        offsets: selected byte offsets (ternary key fields).
        window: parsed byte window (default ``max(offsets) + 1``).
        table_size: declared firewall capacity.
        ruleset: when given, embed its expansion as table ``entries``.

    Returns:
        A JSON-serialisable dict (``json.dumps`` it to write a file).
    """
    offsets = list(offsets)
    if not offsets:
        raise ValueError("offsets must be non-empty")
    window = window if window is not None else max(offsets) + 1
    if window <= max(offsets):
        raise ValueError(f"window {window} does not cover offset {max(offsets)}")

    actions = [
        {
            "name": name,
            "id": action_id,
            "runtime_data": [],
            "primitives": (
                [{"op": "mark_to_drop", "parameters": []}]
                if name == "drop_packet"
                else [
                    {
                        "op": "assign",
                        "parameters": [
                            {"type": "field", "value": ["standard_metadata", "egress_spec"]},
                            {"type": "hexstr", "value": "0x1fe"},
                        ],
                    }
                ]
                if name == "quarantine_packet"
                else []
            ),
        }
        for name, action_id in _ACTION_IDS.items()
    ]

    table: Dict = {
        "name": "firewall",
        "id": 0,
        "match_type": "ternary",
        "type": "simple",
        "max_size": table_size,
        "with_counters": True,
        "key": [
            {
                "match_type": "ternary",
                "name": f"hdr.window.b{o}",
                "target": ["window", f"b{o}"],
                "mask": None,
            }
            for o in offsets
        ],
        "actions": list(_ACTION_IDS),
        "action_ids": list(_ACTION_IDS.values()),
        "default_entry": {
            "action_id": _ACTION_IDS["allow_packet"],
            "action_const": False,
            "action_data": [],
            "action_entry_const": False,
        },
    }
    if ruleset is not None:
        table["entries"] = bmv2_runtime_entries(ruleset)
        table["default_entry"]["action_id"] = _ACTION_IDS[
            f"{ruleset.default_action}_packet"
        ]

    return {
        "program": "learned_gateway.p4",
        "__meta__": {
            "version": [2, 18],
            "compiler": "repro.dataplane.bmv2",
        },
        "header_types": [_window_header_type(window)],
        "headers": [
            {
                "name": "window",
                "id": 0,
                "header_type": "window_t",
                "metadata": False,
                "pi_omit": True,
            }
        ],
        "parsers": [
            {
                "name": "parser",
                "id": 0,
                "init_state": "start",
                "parse_states": [
                    {
                        "name": "start",
                        "id": 0,
                        "parser_ops": [
                            {
                                "parameters": [
                                    {"type": "regular", "value": "window"}
                                ],
                                "op": "extract",
                            }
                        ],
                        "transitions": [
                            {"type": "default", "value": None, "mask": None,
                             "next_state": None}
                        ],
                        "transition_key": [],
                    }
                ],
            }
        ],
        "deparsers": [
            {"name": "deparser", "id": 0, "order": ["window"]}
        ],
        "actions": actions,
        "pipelines": [
            {
                "name": "ingress",
                "id": 0,
                "init_table": "firewall",
                "tables": [table],
                "conditionals": [],
            },
            {
                "name": "egress",
                "id": 1,
                "init_table": None,
                "tables": [],
                "conditionals": [],
            },
        ],
        "checksums": [],
        "errors": [],
        "enums": [],
        "register_arrays": [],
        "counter_arrays": [],
        "meter_arrays": [],
        "learn_lists": [],
        "extern_instances": [],
        "field_lists": [],
    }
