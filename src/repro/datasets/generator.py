"""Labelled trace assembly: devices + attacks → time-sorted packet traces.

``standard_suite()`` builds the three datasets every benchmark uses —
``inet`` (Ethernet/IP with six attack families), ``zigbee`` and ``ble``
(non-IP stacks with one family each) — all seeded and therefore
byte-reproducible.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets import attacks as attacks_mod
from repro.datasets import devices as devices_mod
from repro.datasets.features import FeatureExtractor, LabelEncoder, train_test_split
from repro.net.packet import Packet

__all__ = ["TraceConfig", "Dataset", "generate_trace", "make_dataset", "standard_suite"]


@dataclasses.dataclass
class TraceConfig:
    """Parameters of one generated trace.

    Attributes:
        stack: ``"inet"``, ``"industrial"`` (Modbus/TCP plant floor),
            ``"zigbee"`` or ``"ble"``.
        duration: trace length in seconds.
        n_devices: benign devices per device model.
        attack_families: attack classes to include (defaults to all families
            registered for the stack).
        attack_rate_scale: multiply every family's default packet rate.
        chatter: include background ARP/ICMP housekeeping traffic
            (required for the L2/L3 attack families to be non-trivial).
        seed: RNG seed — two configs with equal fields produce identical
            byte-for-byte traces.
    """

    stack: str = "inet"
    duration: float = 60.0
    n_devices: int = 4
    attack_families: Optional[Sequence[type]] = None
    attack_rate_scale: float = 1.0
    chatter: bool = False
    seed: int = 7

    def __post_init__(self) -> None:
        if self.stack not in ("inet", "industrial", "zigbee", "ble"):
            raise ValueError(f"unknown stack {self.stack!r}")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.n_devices < 1:
            raise ValueError("need at least one device")


def _benign_models(config: TraceConfig) -> List[devices_mod.DeviceModel]:
    models: List[devices_mod.DeviceModel] = []
    for i in range(config.n_devices):
        if config.stack == "inet":
            models.append(devices_mod.MqttSensor(4 * i))
            models.append(devices_mod.CoapPlug(4 * i + 1))
            models.append(devices_mod.UdpCamera(4 * i + 2))
            models.append(devices_mod.DnsClient(4 * i + 3))
        elif config.stack == "industrial":
            models.append(devices_mod.PlcPoller(2 * i))
            models.append(devices_mod.DnsClient(2 * i + 1))
        elif config.stack == "zigbee":
            models.append(devices_mod.ZigbeeSensor(i))
        else:
            models.append(devices_mod.BleWearable(i))
    if config.chatter and config.stack in ("inet", "industrial"):
        for i in range(config.n_devices):
            models.append(devices_mod.NetworkChatter(100 + i))
    return models


def _attack_models(config: TraceConfig) -> List[attacks_mod.AttackModel]:
    families = config.attack_families
    if families is None:
        families = {
            "inet": attacks_mod.INET_ATTACKS,
            "industrial": attacks_mod.INDUSTRIAL_ATTACKS,
            "zigbee": attacks_mod.ZIGBEE_ATTACKS,
            "ble": attacks_mod.BLE_ATTACKS,
        }[config.stack]
    models = []
    for index, family in enumerate(families):
        model = family(index)
        model.rate *= config.attack_rate_scale
        models.append(model)
    return models


#: Count of :func:`generate_trace` calls in this process.  The on-disk
#: dataset cache's tests assert a warm cache performs *zero* generations.
GENERATE_CALLS = 0


def generate_trace(config: TraceConfig) -> List[Packet]:
    """Generate one labelled, time-sorted trace for ``config``."""
    global GENERATE_CALLS
    GENERATE_CALLS += 1
    rng = np.random.default_rng(config.seed)
    packets: List[Packet] = []
    for model in _benign_models(config):
        packets.extend(model.generate(rng, 0.0, config.duration))
    for attack in _attack_models(config):
        # Attacks occupy a window inside the trace, like real incidents.
        start = float(rng.uniform(0.0, config.duration * 0.3))
        length = float(rng.uniform(config.duration * 0.4, config.duration * 0.7))
        packets.extend(attack.generate(rng, start, min(length, config.duration - start)))
    packets.sort(key=lambda p: p.timestamp)
    return packets


@dataclasses.dataclass
class Dataset:
    """A ready-to-train dataset: split packets + encoders + matrices.

    Built by :func:`make_dataset`; every field derives deterministically
    from the :class:`TraceConfig`.
    """

    name: str
    config: TraceConfig
    train_packets: List[Packet]
    test_packets: List[Packet]
    extractor: FeatureExtractor
    labels: LabelEncoder
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray

    @property
    def y_train_binary(self) -> np.ndarray:
        return (self.y_train != 0).astype(np.int64)

    @property
    def y_test_binary(self) -> np.ndarray:
        return (self.y_test != 0).astype(np.int64)

    @functools.cached_property
    def x_train_bytes(self) -> np.ndarray:
        """Exact uint8 feature matrix (no float round-trip)."""
        return self.extractor.transform_bytes(self.train_packets)

    @functools.cached_property
    def x_test_bytes(self) -> np.ndarray:
        """Exact uint8 feature matrix (no float round-trip)."""
        return self.extractor.transform_bytes(self.test_packets)

    def class_counts(self) -> Dict[str, int]:
        """Per-category packet counts over the whole trace."""
        counts: Dict[str, int] = {}
        for packet in self.train_packets + self.test_packets:
            counts[packet.label.category] = counts.get(packet.label.category, 0) + 1
        return counts

    def summary(self) -> str:
        counts = self.class_counts()
        parts = [f"{name}={count}" for name, count in sorted(counts.items())]
        return (
            f"[{self.name}] {len(self.train_packets)} train / "
            f"{len(self.test_packets)} test packets; " + ", ".join(parts)
        )


def make_dataset(
    name: str,
    config: TraceConfig,
    *,
    n_bytes: int = 64,
    test_fraction: float = 0.3,
    split: str = "shuffle",
    cache: Optional[bool] = None,
) -> Dataset:
    """Generate, split and vectorise one dataset.

    Args:
        split: ``"shuffle"`` or ``"time"`` (train strictly precedes test).
        cache: use the content-addressed on-disk cache
            (:mod:`repro.datasets.cache`).  ``None`` (default) enables it
            iff ``REPRO_CACHE_DIR`` is set, so plain test runs are
            unaffected; ``True``/``False`` force it either way.
    """
    from repro.datasets import cache as cache_mod

    use_cache = cache_mod.cache_enabled() if cache is None else cache
    if use_cache:
        cached = cache_mod.load(
            name, config, n_bytes=n_bytes, test_fraction=test_fraction, split=split
        )
        if cached is not None:
            return cached
    packets = generate_trace(config)
    split_rng = np.random.default_rng(config.seed + 1)
    train, test = train_test_split(
        packets, test_fraction=test_fraction, rng=split_rng, method=split
    )
    extractor = FeatureExtractor(n_bytes=n_bytes)
    labels = LabelEncoder().fit(packets)
    dataset = Dataset(
        name=name,
        config=config,
        train_packets=train,
        test_packets=test,
        extractor=extractor,
        labels=labels,
        x_train=extractor.transform(train),
        y_train=labels.encode(train),
        x_test=extractor.transform(test),
        y_test=labels.encode(test),
    )
    if use_cache:
        cache_mod.store(dataset, test_fraction=test_fraction, split=split)
    return dataset


def standard_suite(
    *,
    duration: float = 40.0,
    n_devices: int = 3,
    n_bytes: int = 64,
    seed: int = 7,
    cache: Optional[bool] = None,
) -> Dict[str, Dataset]:
    """The three evaluation datasets used throughout the benchmarks."""
    return {
        "inet": make_dataset(
            "inet",
            TraceConfig(stack="inet", duration=duration, n_devices=n_devices, seed=seed),
            n_bytes=n_bytes,
            cache=cache,
        ),
        "zigbee": make_dataset(
            "zigbee",
            TraceConfig(
                stack="zigbee",
                duration=duration,
                n_devices=max(2 * n_devices, 2),
                seed=seed + 1,
            ),
            n_bytes=n_bytes,
            cache=cache,
        ),
        "ble": make_dataset(
            "ble",
            TraceConfig(
                stack="ble",
                duration=duration,
                n_devices=max(2 * n_devices, 2),
                seed=seed + 2,
            ),
            n_bytes=n_bytes,
            cache=cache,
        ),
    }
