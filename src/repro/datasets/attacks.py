"""Attack traffic generators — eight families across three stacks.

Each generator models a *hacked IoT device or external attacker* and emits
labelled packets.  The families were chosen to cover the attack surface the
paper's introduction motivates (hacked devices infecting the network) and to
have distinguishable — but not single-byte-trivial — byte-level structure:

======================  =====  ==========================================
family                  stack  signal
======================  =====  ==========================================
``syn_flood``           inet   spoofed sources, random TTL, tiny window
``udp_flood``           inet   random high ports, junk payload, random TTL
``port_scan``           inet   one source sweeping destination ports
``mirai_telnet``        inet   telnet brute force with credential payloads
``mqtt_connect_flood``  inet   CONNECT storms with random client ids
``coap_amplification``  coap   spoofed-source NON GETs with block options
``zigbee_storm``        zigbee broadcast on/off commands, max radius
``ble_spoof``           ble    writes to protected handles, bad opcodes
======================  =====  ==========================================

Benign traffic from :mod:`repro.datasets.devices` also contains SYNs, UDP,
CONNECTs, broadcasts — so detection requires *combinations* of header bytes,
which is exactly the regime the two-stage method targets.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.datasets import devices
from repro.net.packet import Packet
from repro.net.protocols import ble, coap, dns, inet, modbus, mqtt, zigbee
from repro.net.synth import (
    FrameEmitter,
    poisson_times,
    random_mac_matrix,
    random_payloads,
    spoofed_ip_matrix,
    stamped_payloads,
)

PSH_ACK = inet.TCP_PSH | inet.TCP_ACK

#: Benign LAN pool a compromised device is drawn from (see ``_compromised``).
COMPROMISED_POOL = 16

__all__ = [
    "AttackModel",
    "SynFlood",
    "UdpFlood",
    "PortScan",
    "MiraiTelnet",
    "MqttConnectFlood",
    "CoapAmplification",
    "Ipv6CoapFlood",
    "IcmpFlood",
    "ArpSpoof",
    "ModbusWriteStorm",
    "ZigbeeStorm",
    "BleSpoof",
    "INET_ATTACKS",
    "INET_ATTACKS_EXTENDED",
    "INDUSTRIAL_ATTACKS",
    "ZIGBEE_ATTACKS",
    "BLE_ATTACKS",
]

# Real Mirai dictionary entries (public knowledge, used for realism).
MIRAI_CREDENTIALS = [
    b"root:xc3511",
    b"root:vizxv",
    b"admin:admin",
    b"root:888888",
    b"root:default",
    b"support:support",
    b"user:user",
    b"root:54321",
]


def _random_mac(rng: np.random.Generator) -> str:
    return "06:" + ":".join(f"{int(b):02x}" for b in rng.integers(0, 256, size=5))


def _spoofed_ip(rng: np.random.Generator) -> str:
    """Random routable-looking source, outside the benign 192.168.1.0/24."""
    return (
        f"{int(rng.integers(11, 223))}.{int(rng.integers(0, 256))}."
        f"{int(rng.integers(0, 256))}.{int(rng.integers(1, 255))}"
    )


def _compromised(rng: np.random.Generator) -> tuple:
    """(mac, ip) of a hacked device inside the benign LAN pool.

    Attacks launched from compromised devices carry *legitimate* link and
    network addresses, so source address alone cannot separate them — the
    detector must look at transport/application bytes.
    """
    index = int(rng.integers(0, COMPROMISED_POOL))
    return devices.device_mac(index), devices.device_ip(index)


_POOL_MACS = [devices.device_mac(i) for i in range(COMPROMISED_POOL)]
_POOL_IPS = [devices.device_ip(i) for i in range(COMPROMISED_POOL)]


def _compromised_columns(
    rng: np.random.Generator, n: int
) -> "tuple[List[str], List[str]]":
    """Per-packet (mac, ip) columns drawn from the compromised pool."""
    indices = rng.integers(0, COMPROMISED_POOL, size=n).tolist()
    return [_POOL_MACS[i] for i in indices], [_POOL_IPS[i] for i in indices]


def _patched_coap(
    template: bytes, message_ids: np.ndarray, tokens: np.ndarray
) -> List[bytes]:
    """Copies of a serialised CoAP ``template`` with fresh ids and tokens.

    ``tokens`` is ``(n, tkl)`` uint8 and must match the template's token
    length; the CoAP fixed header is 4 bytes, so the message id lives at
    bytes 2:4 and the token right after.
    """
    return stamped_payloads(template, {2: message_ids, 4: tokens})


class AttackModel:
    """Base attack generator."""

    #: label category; subclasses override.
    category = "attack"

    def __init__(self, index: int = 0, *, rate: float = 12.0):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.index = index
        self.rate = rate
        self.name = f"{self.category}-{index}"

    def generate(
        self, rng: np.random.Generator, start: float, duration: float
    ) -> Iterator[Packet]:
        raise NotImplementedError

    def _label(self, data: bytes, timestamp: float) -> Packet:
        return Packet(data=data, timestamp=timestamp).with_label(
            self.category, self.name
        )

    def _emitter(self) -> FrameEmitter:
        return FrameEmitter(self.category, self.name)

    def _times(
        self, rng: np.random.Generator, start: float, duration: float
    ) -> Iterator[float]:
        """Poisson arrivals at ``self.rate`` packets/second."""
        t = start + float(rng.exponential(1.0 / self.rate))
        end = start + duration
        while t < end:
            yield t
            t += float(rng.exponential(1.0 / self.rate))


class SynFlood(AttackModel):
    """TCP SYN flood against the gateway from spoofed sources."""

    category = "syn_flood"

    def __init__(self, index: int = 0, *, rate: float = 20.0, dst_port: int = 1883):
        super().__init__(index, rate=rate)
        self.dst_port = dst_port

    def generate(self, rng, start, duration):
        emitter = self._emitter()
        times = poisson_times(rng, start, duration, self.rate)
        n = len(times)
        if n:
            emitter.tcp_batch(
                times,
                random_mac_matrix(rng, n),
                devices.GATEWAY_MAC,
                spoofed_ip_matrix(rng, n),
                devices.GATEWAY_IP,
                rng.integers(1024, 65535, size=n),
                self.dst_port,
                seqs=rng.integers(0, 2**32, size=n),
                flags=inet.TCP_SYN,
                windows=rng.integers(1, 1024, size=n),  # tiny windows
                ttls=rng.integers(30, 255, size=n),
            )
        return emitter.packets()


class UdpFlood(AttackModel):
    """Volumetric UDP junk toward random high ports on the gateway."""

    category = "udp_flood"

    def generate(self, rng, start, duration):
        emitter = self._emitter()
        times = poisson_times(rng, start, duration, self.rate)
        n = len(times)
        if n:
            emitter.udp_batch(
                times,
                random_mac_matrix(rng, n),
                devices.GATEWAY_MAC,
                spoofed_ip_matrix(rng, n),
                devices.GATEWAY_IP,
                rng.integers(1024, 65535, size=n),
                rng.integers(10000, 65535, size=n),
                ttls=rng.integers(30, 255, size=n),
                payloads=random_payloads(rng, n, 64, 512),
            )
        return emitter.packets()


class PortScan(AttackModel):
    """One compromised LAN host sweeping gateway ports with SYNs."""

    category = "port_scan"

    def __init__(self, index: int = 0, *, rate: float = 15.0):
        super().__init__(index, rate=rate)
        self.mac = devices.device_mac(200 + index)
        self.ip = devices.device_ip(200 + index)
        self._port = 1

    def generate(self, rng, start, duration):
        emitter = self._emitter()
        times = poisson_times(rng, start, duration, self.rate)
        n = len(times)
        if n:
            # Sequential sweep: p_{k+1} = p_k % 10000 + 1, continued
            # across windows via self._port.
            ports = (self._port + np.arange(n)) % 10000 + 1
            self._port = int(ports[-1])
            emitter.tcp_batch(
                times,
                self.mac,
                devices.GATEWAY_MAC,
                self.ip,
                devices.GATEWAY_IP,
                rng.integers(40000, 65535, size=n),
                ports,
                seqs=rng.integers(0, 2**32, size=n),
                flags=inet.TCP_SYN,
                windows=1024,
                ttls=64,
            )
        return emitter.packets()


class MiraiTelnet(AttackModel):
    """Mirai-style telnet credential brute force from infected devices."""

    category = "mirai_telnet"

    def __init__(self, index: int = 0, *, rate: float = 12.0):
        super().__init__(index, rate=rate)

    def generate(self, rng, start, duration):
        emitter = self._emitter()
        times = poisson_times(rng, start, duration, self.rate)
        n = len(times)
        if n:
            ports = np.where(rng.random(n) < 0.8, 23, 2323)
            lines = [c + b"\r\n" for c in MIRAI_CREDENTIALS]
            chosen = rng.integers(0, len(lines), size=n).tolist()
            macs, ips = _compromised_columns(rng, n)
            emitter.tcp_batch(
                times,
                macs,
                devices.GATEWAY_MAC,
                ips,
                devices.GATEWAY_IP,
                rng.integers(1024, 65535, size=n),
                ports,
                seqs=rng.integers(0, 2**32, size=n),
                acks=rng.integers(0, 2**32, size=n),
                flags=PSH_ACK,
                ttls=64,
                payloads=[lines[i] for i in chosen],
            )
        return emitter.packets()


class MqttConnectFlood(AttackModel):
    """Broker resource exhaustion: CONNECT storms, random client ids."""

    category = "mqtt_connect_flood"

    def generate(self, rng, start, duration):
        emitter = self._emitter()
        times = poisson_times(rng, start, duration, self.rate)
        n = len(times)
        if n:
            # A 16-char client id is the trailing payload field of the
            # CONNECT frame, so stamp random ids into one template.
            template = mqtt.build_connect(
                "a" * 16, keep_alive=0, clean_session=False
            )
            connects = stamped_payloads(
                template,
                {
                    len(template) - 16: rng.integers(
                        97, 123, size=(n, 16), dtype=np.uint8
                    )
                },
            )
            macs, ips = _compromised_columns(rng, n)
            emitter.tcp_batch(
                times,
                macs,
                devices.GATEWAY_MAC,
                ips,
                devices.GATEWAY_IP,
                rng.integers(1024, 65535, size=n),
                mqtt.MQTT_PORT,
                seqs=rng.integers(0, 2**32, size=n),
                acks=rng.integers(0, 2**32, size=n),
                flags=PSH_ACK,
                ttls=64,
                payloads=connects,
            )
        return emitter.packets()


class CoapAmplification(AttackModel):
    """Spoofed-source CoAP NON GETs requesting large blocks (amplification)."""

    category = "coap_amplification"

    def generate(self, rng, start, duration):
        emitter = self._emitter()
        times = poisson_times(rng, start, duration, self.rate)
        n = len(times)
        if n:
            template = coap.build_message(
                msg_type=coap.NON,
                code=coap.GET,
                token=b"\x00\x00",
                options=[
                    (coap.OPTION_URI_PATH, b".well-known"),
                    (coap.OPTION_URI_PATH, b"core"),
                    (coap.OPTION_BLOCK2, b"\x06"),  # ask for 1024-byte blocks
                ],
            )
            requests = _patched_coap(
                template,
                rng.integers(0, 0xFFFF, size=n),
                rng.integers(0, 256, size=(n, 2), dtype=np.uint8),
            )
            emitter.udp_batch(
                times,
                random_mac_matrix(rng, n),
                devices.GATEWAY_MAC,
                spoofed_ip_matrix(rng, n),  # spoofed victim addresses
                devices.GATEWAY_IP,
                rng.integers(1024, 65535, size=n),
                coap.COAP_PORT,
                ttls=rng.integers(30, 255, size=n),
                payloads=requests,
            )
        return emitter.packets()


class Ipv6CoapFlood(AttackModel):
    """Resource-exhaustion flood of CoAP CONs over IPv6 from spoofed ULAs.

    Every CON requires server state (retransmission tracking), so a CON
    storm with random tokens from rotating source addresses exhausts a
    border router — the Thread-network counterpart of the MQTT flood.
    """

    category = "ipv6_coap_flood"

    def __init__(self, index: int = 0, *, rate: float = 15.0):
        super().__init__(index, rate=rate)

    def generate(self, rng, start, duration):
        from repro.datasets.devices import ThreadSensor

        emitter = self._emitter()
        times = poisson_times(rng, start, duration, self.rate)
        n = len(times)
        if n:
            # Spoofed fd00::/64 ULAs with a random interface suffix.
            suffixes = rng.integers(0x100, 0xFFFF, size=n)
            sources = np.zeros((n, 16), dtype=np.uint8)
            sources[:, 0] = 0xFD
            sources[:, 14] = suffixes >> 8
            sources[:, 15] = suffixes & 0xFF
            prefix = coap.build_message(
                msg_type=coap.CON,
                code=coap.POST,
                token=b"\x00" * 8,
                options=[(coap.OPTION_URI_PATH, b"telemetry")],
            )
            headers = _patched_coap(
                prefix,
                rng.integers(0, 0xFFFF, size=n),
                rng.integers(0, 256, size=(n, 8), dtype=np.uint8),
            )
            bodies = random_payloads(rng, n, 40, 120)
            emitter.udp6_batch(
                times,
                random_mac_matrix(rng, n),
                devices.GATEWAY_MAC,
                sources,
                ThreadSensor.BORDER_ROUTER,
                rng.integers(1024, 65535, size=n),
                coap.COAP_PORT,
                hop_limits=rng.integers(30, 255, size=n),
                payloads=[
                    header + b"\xff" + body
                    for header, body in zip(headers, bodies)
                ],
            )
        return emitter.packets()


class IcmpFlood(AttackModel):
    """Ping flood: oversized ICMP echo requests from spoofed sources."""

    category = "icmp_flood"

    def __init__(self, index: int = 0, *, rate: float = 18.0):
        super().__init__(index, rate=rate)

    def generate(self, rng, start, duration):
        emitter = self._emitter()
        times = poisson_times(rng, start, duration, self.rate)
        n = len(times)
        if n:
            emitter.icmp_echo_batch(
                times,
                devices.GATEWAY_MAC,
                random_mac_matrix(rng, n),
                spoofed_ip_matrix(rng, n),
                devices.GATEWAY_IP,
                identifiers=rng.integers(0, 0xFFFF, size=n),
                sequences=(np.arange(n) + 1) & 0xFFFF,
                ttls=rng.integers(30, 255, size=n),
                payloads=random_payloads(rng, n, 400, 900),
            )
        return emitter.packets()


class ArpSpoof(AttackModel):
    """ARP-cache poisoning: gratuitous replies claiming the gateway's IP.

    The attacker broadcasts ARP replies binding the *gateway's* IP address
    to its own MAC — classic man-in-the-middle setup.  Benign traffic
    contains no ARP replies for the gateway from non-gateway MACs, so the
    tell is in the ARP sender fields.
    """

    category = "arp_spoof"

    def __init__(self, index: int = 0, *, rate: float = 10.0):
        super().__init__(index, rate=rate)
        self.mac = devices.device_mac(210 + index)

    def generate(self, rng, start, duration):
        emitter = self._emitter()
        times = poisson_times(rng, start, duration, self.rate)
        n = len(times)
        if n:
            victims = rng.integers(0, COMPROMISED_POOL, size=n).tolist()
            emitter.arp_batch(
                times, "ff:ff:ff:ff:ff:ff", self.mac,
                sender_macs=self.mac,           # attacker's MAC ...
                sender_ips=devices.GATEWAY_IP,  # ... claiming the gateway's IP
                target_macs="ff:ff:ff:ff:ff:ff",
                target_ips=[_POOL_IPS[i] for i in victims],
                requests=False,
            )
        return emitter.packets()


class ModbusWriteStorm(AttackModel):
    """Compromised HMI issuing unauthorised Modbus writes and restarts.

    Mixes Write Single Coil toggles, out-of-range register writes, and
    FC-8 diagnostics restarts — all from a legitimate LAN host on port 502,
    so source addresses and ports look exactly like the benign poller.
    """

    category = "modbus_write_storm"

    def generate(self, rng, start, duration):
        emitter = self._emitter()
        mac, ip = _compromised(rng)
        times = poisson_times(rng, start, duration, self.rate)
        n = len(times)
        if n:
            transactions = rng.integers(0, 0xFFFF, size=n).tolist()
            units = rng.integers(1, 5, size=n).tolist()
            choices = rng.random(n)
            addresses = rng.integers(0, 64, size=n).tolist()
            coil_values = rng.integers(0, 2, size=n).tolist()
            register_values = rng.integers(0, 0xFFFF, size=n).tolist()
            pdus = []
            for i in range(n):
                if choices[i] < 0.4:
                    pdus.append(modbus.build_write_coil(
                        transactions[i], units[i], addresses[i],
                        bool(coil_values[i]),
                    ))
                elif choices[i] < 0.8:
                    pdus.append(modbus.build_write_register(
                        transactions[i], units[i], addresses[i],
                        register_values[i],
                    ))
                else:
                    pdus.append(modbus.build_diagnostics(
                        transactions[i], units[i], 1  # restart
                    ))
            emitter.tcp_batch(
                times,
                mac,
                devices.GATEWAY_MAC,
                ip,
                devices.GATEWAY_IP,
                rng.integers(49152, 65535, size=n),
                modbus.MODBUS_PORT,
                seqs=rng.integers(0, 2**32, size=n),
                acks=rng.integers(0, 2**32, size=n),
                flags=PSH_ACK,
                ttls=64,
                payloads=pdus,
            )
        return emitter.packets()


class ZigbeeStorm(AttackModel):
    """Compromised Zigbee node broadcasting on/off toggles at max radius."""

    category = "zigbee_storm"

    def __init__(self, index: int = 0, *, rate: float = 25.0):
        super().__init__(index, rate=rate)
        self.short_addr = 0x2000 + index

    def generate(self, rng, start, duration):
        counter = 0
        for t in self._times(rng, start, duration):
            counter = (counter + 1) & 0xFF
            toggle = bytes([0x01, counter, 0x02])  # ZCL on/off toggle command
            yield self._label(
                zigbee.build_frame(
                    src_addr=self.short_addr,
                    dst_addr=zigbee.BROADCAST_ADDR,
                    mac_sequence=counter,
                    nwk_sequence=counter,
                    aps_counter=counter,
                    radius=30,
                    cluster_id=zigbee.CLUSTER_ON_OFF,
                    dst_endpoint=0xFF,  # broadcast endpoint
                    payload=toggle,
                    ack_request=False,
                ),
                t,
            )


class BleSpoof(AttackModel):
    """Hijacked BLE link writing to protected attribute handles."""

    category = "ble_spoof"

    PROTECTED_HANDLES = [0x0001, 0x0002, 0x0003, 0xFF00, 0xFF01]

    def __init__(self, index: int = 0, *, rate: float = 18.0):
        super().__init__(index, rate=rate)
        self.access_addr = 0xDEAD0000 + index

    def generate(self, rng, start, duration):
        sn = 0
        for t in self._times(rng, start, duration):
            handle = self.PROTECTED_HANDLES[
                int(rng.integers(0, len(self.PROTECTED_HANDLES)))
            ]
            value = bytes(rng.integers(0, 256, size=int(rng.integers(8, 20)), dtype=np.uint8))
            pdu = ble.build_att_pdu(ble.ATT_WRITE_REQ, handle, value)
            yield self._label(
                ble.build_frame(access_addr=self.access_addr, att_pdu=pdu, sn=sn),
                t,
            )
            sn ^= 1


#: Attack families per stack, used by the dataset assembler.
INET_ATTACKS = [SynFlood, UdpFlood, PortScan, MiraiTelnet, MqttConnectFlood, CoapAmplification]
#: Extended family list (adds L2/L3 attacks; pair with chatter=True).
INET_ATTACKS_EXTENDED = INET_ATTACKS + [IcmpFlood, ArpSpoof]
INDUSTRIAL_ATTACKS = [ModbusWriteStorm, SynFlood, PortScan]
ZIGBEE_ATTACKS = [ZigbeeStorm]
BLE_ATTACKS = [BleSpoof]
