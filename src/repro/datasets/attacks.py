"""Attack traffic generators — eight families across three stacks.

Each generator models a *hacked IoT device or external attacker* and emits
labelled packets.  The families were chosen to cover the attack surface the
paper's introduction motivates (hacked devices infecting the network) and to
have distinguishable — but not single-byte-trivial — byte-level structure:

======================  =====  ==========================================
family                  stack  signal
======================  =====  ==========================================
``syn_flood``           inet   spoofed sources, random TTL, tiny window
``udp_flood``           inet   random high ports, junk payload, random TTL
``port_scan``           inet   one source sweeping destination ports
``mirai_telnet``        inet   telnet brute force with credential payloads
``mqtt_connect_flood``  inet   CONNECT storms with random client ids
``coap_amplification``  coap   spoofed-source NON GETs with block options
``zigbee_storm``        zigbee broadcast on/off commands, max radius
``ble_spoof``           ble    writes to protected handles, bad opcodes
======================  =====  ==========================================

Benign traffic from :mod:`repro.datasets.devices` also contains SYNs, UDP,
CONNECTs, broadcasts — so detection requires *combinations* of header bytes,
which is exactly the regime the two-stage method targets.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.datasets import devices
from repro.net.packet import Packet
from repro.net.protocols import ble, coap, dns, inet, modbus, mqtt, zigbee

__all__ = [
    "AttackModel",
    "SynFlood",
    "UdpFlood",
    "PortScan",
    "MiraiTelnet",
    "MqttConnectFlood",
    "CoapAmplification",
    "Ipv6CoapFlood",
    "IcmpFlood",
    "ArpSpoof",
    "ModbusWriteStorm",
    "ZigbeeStorm",
    "BleSpoof",
    "INET_ATTACKS",
    "INET_ATTACKS_EXTENDED",
    "INDUSTRIAL_ATTACKS",
    "ZIGBEE_ATTACKS",
    "BLE_ATTACKS",
]

# Real Mirai dictionary entries (public knowledge, used for realism).
MIRAI_CREDENTIALS = [
    b"root:xc3511",
    b"root:vizxv",
    b"admin:admin",
    b"root:888888",
    b"root:default",
    b"support:support",
    b"user:user",
    b"root:54321",
]


def _random_mac(rng: np.random.Generator) -> str:
    return "06:" + ":".join(f"{int(b):02x}" for b in rng.integers(0, 256, size=5))


def _spoofed_ip(rng: np.random.Generator) -> str:
    """Random routable-looking source, outside the benign 192.168.1.0/24."""
    return (
        f"{int(rng.integers(11, 223))}.{int(rng.integers(0, 256))}."
        f"{int(rng.integers(0, 256))}.{int(rng.integers(1, 255))}"
    )


def _compromised(rng: np.random.Generator) -> tuple:
    """(mac, ip) of a hacked device inside the benign LAN pool.

    Attacks launched from compromised devices carry *legitimate* link and
    network addresses, so source address alone cannot separate them — the
    detector must look at transport/application bytes.
    """
    index = int(rng.integers(0, 16))
    return devices.device_mac(index), devices.device_ip(index)


class AttackModel:
    """Base attack generator."""

    #: label category; subclasses override.
    category = "attack"

    def __init__(self, index: int = 0, *, rate: float = 12.0):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.index = index
        self.rate = rate
        self.name = f"{self.category}-{index}"

    def generate(
        self, rng: np.random.Generator, start: float, duration: float
    ) -> Iterator[Packet]:
        raise NotImplementedError

    def _label(self, data: bytes, timestamp: float) -> Packet:
        return Packet(data=data, timestamp=timestamp).with_label(
            self.category, self.name
        )

    def _times(
        self, rng: np.random.Generator, start: float, duration: float
    ) -> Iterator[float]:
        """Poisson arrivals at ``self.rate`` packets/second."""
        t = start + float(rng.exponential(1.0 / self.rate))
        end = start + duration
        while t < end:
            yield t
            t += float(rng.exponential(1.0 / self.rate))


class SynFlood(AttackModel):
    """TCP SYN flood against the gateway from spoofed sources."""

    category = "syn_flood"

    def __init__(self, index: int = 0, *, rate: float = 20.0, dst_port: int = 1883):
        super().__init__(index, rate=rate)
        self.dst_port = dst_port

    def generate(self, rng, start, duration):
        for t in self._times(rng, start, duration):
            yield self._label(
                inet.build_tcp_packet(
                    _random_mac(rng),
                    devices.GATEWAY_MAC,
                    _spoofed_ip(rng),
                    devices.GATEWAY_IP,
                    int(rng.integers(1024, 65535)),
                    self.dst_port,
                    seq=int(rng.integers(0, 2**32)),
                    flags=inet.TCP_SYN,
                    window=int(rng.integers(1, 1024)),  # tiny windows
                    ttl=int(rng.integers(30, 255)),
                ),
                t,
            )


class UdpFlood(AttackModel):
    """Volumetric UDP junk toward random high ports on the gateway."""

    category = "udp_flood"

    def generate(self, rng, start, duration):
        for t in self._times(rng, start, duration):
            size = int(rng.integers(64, 512))
            yield self._label(
                inet.build_udp_packet(
                    _random_mac(rng),
                    devices.GATEWAY_MAC,
                    _spoofed_ip(rng),
                    devices.GATEWAY_IP,
                    int(rng.integers(1024, 65535)),
                    int(rng.integers(10000, 65535)),
                    ttl=int(rng.integers(30, 255)),
                    payload=bytes(rng.integers(0, 256, size=size, dtype=np.uint8)),
                ),
                t,
            )


class PortScan(AttackModel):
    """One compromised LAN host sweeping gateway ports with SYNs."""

    category = "port_scan"

    def __init__(self, index: int = 0, *, rate: float = 15.0):
        super().__init__(index, rate=rate)
        self.mac = devices.device_mac(200 + index)
        self.ip = devices.device_ip(200 + index)
        self._port = 1

    def generate(self, rng, start, duration):
        for t in self._times(rng, start, duration):
            self._port = self._port % 10000 + 1
            yield self._label(
                inet.build_tcp_packet(
                    self.mac,
                    devices.GATEWAY_MAC,
                    self.ip,
                    devices.GATEWAY_IP,
                    int(rng.integers(40000, 65535)),
                    self._port,
                    seq=int(rng.integers(0, 2**32)),
                    flags=inet.TCP_SYN,
                    window=1024,
                    ttl=64,
                ),
                t,
            )


class MiraiTelnet(AttackModel):
    """Mirai-style telnet credential brute force from infected devices."""

    category = "mirai_telnet"

    def __init__(self, index: int = 0, *, rate: float = 12.0):
        super().__init__(index, rate=rate)

    def generate(self, rng, start, duration):
        for t in self._times(rng, start, duration):
            victim_port = 23 if rng.random() < 0.8 else 2323
            credential = MIRAI_CREDENTIALS[int(rng.integers(0, len(MIRAI_CREDENTIALS)))]
            mac, ip = _compromised(rng)
            yield self._label(
                inet.build_tcp_packet(
                    mac,
                    devices.GATEWAY_MAC,
                    ip,
                    devices.GATEWAY_IP,
                    int(rng.integers(1024, 65535)),
                    victim_port,
                    seq=int(rng.integers(0, 2**32)),
                    ack=int(rng.integers(0, 2**32)),
                    flags=inet.TCP_PSH | inet.TCP_ACK,
                    ttl=64,
                    payload=credential + b"\r\n",
                ),
                t,
            )


class MqttConnectFlood(AttackModel):
    """Broker resource exhaustion: CONNECT storms, random client ids."""

    category = "mqtt_connect_flood"

    def generate(self, rng, start, duration):
        for t in self._times(rng, start, duration):
            client_id = "".join(
                chr(int(c)) for c in rng.integers(97, 123, size=16)
            )
            connect = mqtt.build_connect(client_id, keep_alive=0, clean_session=False)
            mac, ip = _compromised(rng)
            yield self._label(
                inet.build_tcp_packet(
                    mac,
                    devices.GATEWAY_MAC,
                    ip,
                    devices.GATEWAY_IP,
                    int(rng.integers(1024, 65535)),
                    mqtt.MQTT_PORT,
                    seq=int(rng.integers(0, 2**32)),
                    ack=int(rng.integers(0, 2**32)),
                    flags=inet.TCP_PSH | inet.TCP_ACK,
                    ttl=64,
                    payload=connect,
                ),
                t,
            )


class CoapAmplification(AttackModel):
    """Spoofed-source CoAP NON GETs requesting large blocks (amplification)."""

    category = "coap_amplification"

    def generate(self, rng, start, duration):
        for t in self._times(rng, start, duration):
            request = coap.build_message(
                msg_type=coap.NON,
                code=coap.GET,
                message_id=int(rng.integers(0, 0xFFFF)),
                token=bytes(rng.integers(0, 256, size=2, dtype=np.uint8)),
                options=[
                    (coap.OPTION_URI_PATH, b".well-known"),
                    (coap.OPTION_URI_PATH, b"core"),
                    (coap.OPTION_BLOCK2, b"\x06"),  # ask for 1024-byte blocks
                ],
            )
            yield self._label(
                inet.build_udp_packet(
                    _random_mac(rng),
                    devices.GATEWAY_MAC,
                    _spoofed_ip(rng),  # spoofed victim address
                    devices.GATEWAY_IP,
                    int(rng.integers(1024, 65535)),
                    coap.COAP_PORT,
                    ttl=int(rng.integers(30, 255)),
                    payload=request,
                ),
                t,
            )


class Ipv6CoapFlood(AttackModel):
    """Resource-exhaustion flood of CoAP CONs over IPv6 from spoofed ULAs.

    Every CON requires server state (retransmission tracking), so a CON
    storm with random tokens from rotating source addresses exhausts a
    border router — the Thread-network counterpart of the MQTT flood.
    """

    category = "ipv6_coap_flood"

    def __init__(self, index: int = 0, *, rate: float = 15.0):
        super().__init__(index, rate=rate)

    def generate(self, rng, start, duration):
        from repro.datasets.devices import ThreadSensor

        for t in self._times(rng, start, duration):
            spoofed = f"fd00::{int(rng.integers(0x100, 0xFFFF)):x}"
            request = coap.build_message(
                msg_type=coap.CON,
                code=coap.POST,
                message_id=int(rng.integers(0, 0xFFFF)),
                token=bytes(rng.integers(0, 256, size=8, dtype=np.uint8)),
                options=[(coap.OPTION_URI_PATH, b"telemetry")],
                payload=bytes(rng.integers(0, 256, size=int(rng.integers(40, 120)), dtype=np.uint8)),
            )
            yield self._label(
                inet.build_udp6_packet(
                    _random_mac(rng),
                    devices.GATEWAY_MAC,
                    spoofed,
                    ThreadSensor.BORDER_ROUTER,
                    int(rng.integers(1024, 65535)),
                    coap.COAP_PORT,
                    hop_limit=int(rng.integers(30, 255)),
                    payload=request,
                ),
                t,
            )


class IcmpFlood(AttackModel):
    """Ping flood: oversized ICMP echo requests from spoofed sources."""

    category = "icmp_flood"

    def __init__(self, index: int = 0, *, rate: float = 18.0):
        super().__init__(index, rate=rate)

    def generate(self, rng, start, duration):
        sequence = 0
        for t in self._times(rng, start, duration):
            sequence = (sequence + 1) & 0xFFFF
            payload = bytes(rng.integers(0, 256, size=int(rng.integers(400, 900)), dtype=np.uint8))
            icmp_msg = inet.build_icmp_echo(
                int(rng.integers(0, 0xFFFF)), sequence, payload
            )
            ip = inet.build_ipv4(
                _spoofed_ip(rng),
                devices.GATEWAY_IP,
                inet.PROTO_ICMP,
                icmp_msg,
                ttl=int(rng.integers(30, 255)),
            )
            yield self._label(
                inet.build_ethernet(
                    devices.GATEWAY_MAC, _random_mac(rng), inet.ETHERTYPE_IPV4, ip
                ),
                t,
            )


class ArpSpoof(AttackModel):
    """ARP-cache poisoning: gratuitous replies claiming the gateway's IP.

    The attacker broadcasts ARP replies binding the *gateway's* IP address
    to its own MAC — classic man-in-the-middle setup.  Benign traffic
    contains no ARP replies for the gateway from non-gateway MACs, so the
    tell is in the ARP sender fields.
    """

    category = "arp_spoof"

    def __init__(self, index: int = 0, *, rate: float = 10.0):
        super().__init__(index, rate=rate)
        self.mac = devices.device_mac(210 + index)

    def generate(self, rng, start, duration):
        for t in self._times(rng, start, duration):
            body = inet.build_arp(
                self.mac,                 # attacker's MAC ...
                devices.GATEWAY_IP,       # ... claiming the gateway's IP
                "ff:ff:ff:ff:ff:ff",
                devices.device_ip(int(rng.integers(0, 16))),
                request=False,
            )
            yield self._label(
                inet.build_ethernet(
                    "ff:ff:ff:ff:ff:ff", self.mac, inet.ETHERTYPE_ARP, body
                ),
                t,
            )


class ModbusWriteStorm(AttackModel):
    """Compromised HMI issuing unauthorised Modbus writes and restarts.

    Mixes Write Single Coil toggles, out-of-range register writes, and
    FC-8 diagnostics restarts — all from a legitimate LAN host on port 502,
    so source addresses and ports look exactly like the benign poller.
    """

    category = "modbus_write_storm"

    def generate(self, rng, start, duration):
        mac, ip = _compromised(rng)
        for t in self._times(rng, start, duration):
            transaction = int(rng.integers(0, 0xFFFF))
            unit = int(rng.integers(1, 5))
            choice = rng.random()
            if choice < 0.4:
                pdu = modbus.build_write_coil(
                    transaction, unit, int(rng.integers(0, 64)),
                    bool(rng.integers(0, 2)),
                )
            elif choice < 0.8:
                pdu = modbus.build_write_register(
                    transaction, unit, int(rng.integers(0, 64)),
                    int(rng.integers(0, 0xFFFF)),
                )
            else:
                pdu = modbus.build_diagnostics(transaction, unit, 1)  # restart
            yield self._label(
                inet.build_tcp_packet(
                    mac,
                    devices.GATEWAY_MAC,
                    ip,
                    devices.GATEWAY_IP,
                    int(rng.integers(49152, 65535)),
                    modbus.MODBUS_PORT,
                    seq=int(rng.integers(0, 2**32)),
                    ack=int(rng.integers(0, 2**32)),
                    flags=inet.TCP_PSH | inet.TCP_ACK,
                    ttl=64,
                    payload=pdu,
                ),
                t,
            )


class ZigbeeStorm(AttackModel):
    """Compromised Zigbee node broadcasting on/off toggles at max radius."""

    category = "zigbee_storm"

    def __init__(self, index: int = 0, *, rate: float = 25.0):
        super().__init__(index, rate=rate)
        self.short_addr = 0x2000 + index

    def generate(self, rng, start, duration):
        counter = 0
        for t in self._times(rng, start, duration):
            counter = (counter + 1) & 0xFF
            toggle = bytes([0x01, counter, 0x02])  # ZCL on/off toggle command
            yield self._label(
                zigbee.build_frame(
                    src_addr=self.short_addr,
                    dst_addr=zigbee.BROADCAST_ADDR,
                    mac_sequence=counter,
                    nwk_sequence=counter,
                    aps_counter=counter,
                    radius=30,
                    cluster_id=zigbee.CLUSTER_ON_OFF,
                    dst_endpoint=0xFF,  # broadcast endpoint
                    payload=toggle,
                    ack_request=False,
                ),
                t,
            )


class BleSpoof(AttackModel):
    """Hijacked BLE link writing to protected attribute handles."""

    category = "ble_spoof"

    PROTECTED_HANDLES = [0x0001, 0x0002, 0x0003, 0xFF00, 0xFF01]

    def __init__(self, index: int = 0, *, rate: float = 18.0):
        super().__init__(index, rate=rate)
        self.access_addr = 0xDEAD0000 + index

    def generate(self, rng, start, duration):
        sn = 0
        for t in self._times(rng, start, duration):
            handle = self.PROTECTED_HANDLES[
                int(rng.integers(0, len(self.PROTECTED_HANDLES)))
            ]
            value = bytes(rng.integers(0, 256, size=int(rng.integers(8, 20)), dtype=np.uint8))
            pdu = ble.build_att_pdu(ble.ATT_WRITE_REQ, handle, value)
            yield self._label(
                ble.build_frame(access_addr=self.access_addr, att_pdu=pdu, sn=sn),
                t,
            )
            sn ^= 1


#: Attack families per stack, used by the dataset assembler.
INET_ATTACKS = [SynFlood, UdpFlood, PortScan, MiraiTelnet, MqttConnectFlood, CoapAmplification]
#: Extended family list (adds L2/L3 attacks; pair with chatter=True).
INET_ATTACKS_EXTENDED = INET_ATTACKS + [IcmpFlood, ArpSpoof]
INDUSTRIAL_ATTACKS = [ModbusWriteStorm, SynFlood, PortScan]
ZIGBEE_ATTACKS = [ZigbeeStorm]
BLE_ATTACKS = [BleSpoof]
