"""Synthetic labelled IoT traces and feature extraction.

Stands in for the paper's real gateway captures (see the substitution table
in ``DESIGN.md``): seeded generators emit byte-exact packets from benign
device behaviour models and eight attack families over three protocol
stacks (Ethernet/IP, Zigbee-like, BLE-like).
"""

from repro.datasets.features import FeatureExtractor, LabelEncoder
from repro.datasets.generator import (
    Dataset,
    TraceConfig,
    generate_trace,
    make_dataset,
    standard_suite,
)

__all__ = [
    "FeatureExtractor",
    "LabelEncoder",
    "TraceConfig",
    "Dataset",
    "generate_trace",
    "make_dataset",
    "standard_suite",
]
