"""Benign IoT device behaviour models.

Each model emits the timestamped, byte-exact packets one device produces
over a time window: MQTT sensors publishing telemetry, CoAP smart plugs,
UDP cameras, DNS lookups, and full TCP session lifecycles (so SYN packets
also appear in *benign* traffic — attacks must not be separable by the SYN
flag alone).  Non-IP models emit Zigbee-like and BLE-like frames.

All randomness flows through the caller's ``numpy`` Generator, so traces
are reproducible from a seed.  The inet-stack models record frame specs
into a :class:`repro.net.synth.FrameEmitter` and render the whole window
in batch; high-volume models (the camera stream) draw whole column
arrays at once.  Byte identity between the fast and scalar render
backends is locked by the differential test suite.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List

import numpy as np

from repro.net.packet import Packet
from repro.net.protocols import ble, coap, dns, inet, modbus, mqtt, zigbee
from repro.net.synth import (
    FrameEmitter,
    arrival_chain,
    random_payloads,
    stamped_payloads,
    uniform_chain,
)

__all__ = [
    "GATEWAY_MAC",
    "GATEWAY_IP",
    "DeviceModel",
    "MqttSensor",
    "CoapPlug",
    "UdpCamera",
    "DnsClient",
    "ThreadSensor",
    "NetworkChatter",
    "PlcPoller",
    "ZigbeeSensor",
    "BleWearable",
    "TcpSession",
]

GATEWAY_MAC = "02:00:00:00:00:01"
GATEWAY_IP = "192.168.1.1"
BROKER_PORT = mqtt.MQTT_PORT

PSH_ACK = inet.TCP_PSH | inet.TCP_ACK

#: (flags, reverse) steps of the three-way handshake / FIN-ACK teardown.
TCP_HANDSHAKE = (
    (inet.TCP_SYN, False),
    (inet.TCP_SYN | inet.TCP_ACK, True),
    (inet.TCP_ACK, False),
)
TCP_TEARDOWN = (
    (inet.TCP_FIN | inet.TCP_ACK, False),
    (inet.TCP_FIN | inet.TCP_ACK, True),
    (inet.TCP_ACK, False),
)


def device_mac(index: int) -> str:
    """Deterministic locally administered MAC for device ``index``."""
    return f"02:00:00:00:01:{index % 256:02x}"


def device_ip(index: int) -> str:
    """Deterministic LAN address for device ``index``."""
    return f"192.168.1.{10 + (index % 240)}"


@dataclasses.dataclass
class TcpSession:
    """Helper that emits a full TCP session lifecycle as raw frames.

    Produces SYN / SYN-ACK / ACK, then data segments with advancing
    sequence numbers, then FIN-ACK teardown — benign traffic therefore
    contains every TCP flag combination attacks also use.
    """

    src_mac: str
    dst_mac: str
    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    seq: int = 0
    peer_seq: int = 0
    ip_id: int = 1

    def _advance(self, payload: bytes, flags: int, reverse: bool) -> tuple:
        """Step the session state; return the endpoint/seq tuple to emit."""
        self.ip_id = (self.ip_id + 1) & 0xFFFF
        bump = max(
            len(payload), 1 if flags & (inet.TCP_SYN | inet.TCP_FIN) else 0
        )
        if reverse:
            args = (self.dst_mac, self.src_mac, self.dst_ip, self.src_ip,
                    self.dst_port, self.src_port, self.peer_seq, self.seq)
            self.peer_seq = (self.peer_seq + bump) & 0xFFFFFFFF
        else:
            args = (self.src_mac, self.dst_mac, self.src_ip, self.dst_ip,
                    self.src_port, self.dst_port, self.seq, self.peer_seq)
            self.seq = (self.seq + bump) & 0xFFFFFFFF
        return args

    def emit(
        self,
        emitter: FrameEmitter,
        t: float,
        payload: bytes,
        flags: int,
        *,
        reverse: bool = False,
    ) -> None:
        """Record one segment into ``emitter`` and advance the session."""
        smac, dmac, sip, dip, sport, dport, seq, ack = self._advance(
            payload, flags, reverse
        )
        emitter.tcp(
            t, smac, dmac, sip, dip, sport, dport,
            seq=seq, ack=ack, flags=flags, ident=self.ip_id, payload=payload,
        )

    def _frame(self, payload: bytes, flags: int, *, reverse: bool = False) -> bytes:
        smac, dmac, sip, dip, sport, dport, seq, ack = self._advance(
            payload, flags, reverse
        )
        return inet.build_tcp_packet(
            smac, dmac, sip, dip, sport, dport,
            seq=seq, ack=ack, flags=flags,
            identification=self.ip_id, payload=payload,
        )

    def handshake(self) -> List[bytes]:
        """SYN, SYN-ACK, ACK frames."""
        return [
            self._frame(b"", flags, reverse=reverse)
            for flags, reverse in TCP_HANDSHAKE
        ]

    def send(self, payload: bytes) -> bytes:
        """A PSH|ACK data segment from the client."""
        return self._frame(payload, PSH_ACK)

    def receive(self, payload: bytes) -> bytes:
        """A PSH|ACK data segment from the server."""
        return self._frame(payload, PSH_ACK, reverse=True)

    def teardown(self) -> List[bytes]:
        """FIN-ACK exchange frames."""
        return [
            self._frame(b"", flags, reverse=reverse)
            for flags, reverse in TCP_TEARDOWN
        ]


class DeviceModel:
    """Base benign device.

    Subclasses implement :meth:`generate`, emitting labelled packets with
    trace-relative timestamps in ``[start, start + duration)``.
    """

    def __init__(self, index: int, name: str):
        self.index = index
        self.name = f"{name}-{index}"
        self.mac = device_mac(index)
        self.ip = device_ip(index)

    def generate(
        self, rng: np.random.Generator, start: float, duration: float
    ) -> Iterator[Packet]:
        raise NotImplementedError

    def _emitter(self) -> FrameEmitter:
        return FrameEmitter("benign", self.name)

    def _label(self, data: bytes, timestamp: float) -> Packet:
        return Packet(data=data, timestamp=timestamp).with_label("benign", self.name)


class MqttSensor(DeviceModel):
    """Telemetry sensor: CONNECT, periodic PUBLISH, PINGREQ, DISCONNECT."""

    def __init__(self, index: int, *, period: float = 1.0, topic: str = "home/temp"):
        super().__init__(index, "mqtt-sensor")
        self.period = period
        self.topic = f"{topic}/{index}"

    def generate(self, rng, start, duration):
        emitter = self._emitter()
        session = TcpSession(
            self.mac,
            GATEWAY_MAC,
            self.ip,
            GATEWAY_IP,
            int(rng.integers(49152, 65535)),
            BROKER_PORT,
            seq=int(rng.integers(0, 2**32)),
            peer_seq=int(rng.integers(0, 2**32)),
        )
        t = start + float(rng.uniform(0, self.period))
        for flags, reverse in TCP_HANDSHAKE:
            session.emit(emitter, t, b"", flags, reverse=reverse)
            t += float(rng.uniform(0.0005, 0.003))
        session.emit(emitter, t, mqtt.build_connect(self.name, keep_alive=60), PSH_ACK)
        t += float(rng.uniform(0.001, 0.01))
        session.emit(emitter, t, mqtt.build_connack(), PSH_ACK, reverse=True)
        end = start + duration
        last_ping = t
        while t < end:
            t += float(rng.uniform(0.5, 1.5)) * self.period
            if t >= end:
                break
            reading = f"{{\"t\":{rng.normal(21.0, 2.0):.2f}}}".encode()
            session.emit(
                emitter, t, mqtt.build_publish(self.topic, reading), PSH_ACK
            )
            if t - last_ping > 30.0:
                session.emit(emitter, t + 0.01, mqtt.build_pingreq(), PSH_ACK)
                last_ping = t
        session.emit(
            emitter, min(t, end - 1e-3), mqtt.build_disconnect(), PSH_ACK
        )
        for flags, reverse in TCP_TEARDOWN:
            session.emit(
                emitter, min(t + 0.01, end - 1e-4), b"", flags, reverse=reverse
            )
        return emitter.packets()


class CoapPlug(DeviceModel):
    """Smart plug polled over CoAP: CON GET → ACK 2.05 exchanges."""

    def __init__(self, index: int, *, period: float = 1.5):
        super().__init__(index, "coap-plug")
        self.period = period

    def generate(self, rng, start, duration):
        emitter = self._emitter()
        first = start + float(rng.uniform(0, self.period))
        message_id = int(rng.integers(0, 0xFFFF))
        times = uniform_chain(
            rng, first, start + duration,
            0.5 * self.period, 1.5 * self.period,
        )
        n = len(times)
        if n:
            message_ids = (message_id + 1 + np.arange(n)) & 0xFFFF
            tokens = rng.integers(0, 256, size=(n, 4), dtype=np.uint8)
            sports = rng.integers(49152, 65535, size=n)
            delays = rng.uniform(0.002, 0.02, size=n)
            states = rng.random(n) < 0.5
            request = coap.build_message(
                msg_type=coap.CON,
                code=coap.GET,
                token=b"\x00" * 4,
                options=[(coap.OPTION_URI_PATH, b"state")],
            )
            # ACK header without payload; "on"/"off" rides after the
            # 0xFF payload marker.
            ack = coap.build_message(
                msg_type=coap.ACK,
                code=coap.CONTENT,
                token=b"\x00" * 4,
                options=[(coap.OPTION_CONTENT_FORMAT, b"\x00")],
            )
            acks = stamped_payloads(ack, {2: message_ids, 4: tokens})
            emitter.udp_batch(
                times, GATEWAY_MAC, self.mac, GATEWAY_IP, self.ip,
                sports, coap.COAP_PORT,
                payloads=stamped_payloads(
                    request, {2: message_ids, 4: tokens}
                ),
            )
            emitter.udp_batch(
                times + delays, self.mac, GATEWAY_MAC, self.ip, GATEWAY_IP,
                coap.COAP_PORT, sports,
                payloads=[
                    header + (b"\xffon" if state else b"\xffoff")
                    for header, state in zip(acks, states.tolist())
                ],
            )
        return emitter.packets()


class UdpCamera(DeviceModel):
    """Camera streaming RTP-like UDP packets to the gateway."""

    RTP_PORT = 5004

    def __init__(self, index: int, *, fps: float = 6.0):
        super().__init__(index, "udp-camera")
        self.fps = fps

    def generate(self, rng, start, duration):
        emitter = self._emitter()
        first = start + float(rng.uniform(0, 1.0 / self.fps))
        sequence = int(rng.integers(0, 0xFFFF))
        sport = int(rng.integers(49152, 65535))
        times = arrival_chain(rng, first, start + duration, 1.0 / self.fps)
        n = len(times)
        if n:
            # RTP-ish headers: V=2, PT=96, sequence, timestamp, SSRC.
            sequences = (sequence + 1 + np.arange(n)) & 0xFFFF
            stamps = (times * 90000).astype(np.int64) & 0xFFFFFFFF
            headers = np.empty((n, 12), dtype=np.uint8)
            headers[:, 0] = 0x80
            headers[:, 1] = 96
            headers[:, 2] = sequences >> 8
            headers[:, 3] = sequences & 0xFF
            headers[:, 4] = stamps >> 24
            headers[:, 5] = (stamps >> 16) & 0xFF
            headers[:, 6] = (stamps >> 8) & 0xFF
            headers[:, 7] = stamps & 0xFF
            headers[:, 8:12] = np.frombuffer(
                (0x1000 + self.index).to_bytes(4, "big"), dtype=np.uint8
            )
            header_blob = headers.tobytes()
            payloads = [
                header_blob[i * 12 : (i + 1) * 12] + body
                for i, body in enumerate(random_payloads(rng, n, 200, 400))
            ]
            emitter.udp_batch(
                times, self.mac, GATEWAY_MAC, self.ip, GATEWAY_IP,
                sport, self.RTP_PORT, payloads=payloads,
            )
        return emitter.packets()


class DnsClient(DeviceModel):
    """Device resolving its cloud endpoints now and then."""

    NAMES = ["api.cloud.example", "time.cloud.example", "fw.vendor.example"]

    def __init__(self, index: int, *, period: float = 6.0):
        super().__init__(index, "dns-client")
        self.period = period

    def generate(self, rng, start, duration):
        emitter = self._emitter()
        first = start + float(rng.uniform(0, self.period))
        times = uniform_chain(
            rng, first, start + duration,
            0.5 * self.period, 1.5 * self.period,
        )
        n = len(times)
        if n:
            txids = rng.integers(0, 0xFFFF, size=n)
            chosen = rng.integers(0, len(self.NAMES), size=n).tolist()
            sports = rng.integers(49152, 65535, size=n)
            delays = rng.uniform(0.005, 0.05, size=n)
            # The txid is the first header word; stamp it into one
            # query/response template per name.
            txid_blob = txids.astype(">u2").tobytes()
            queries = [dns.build_query(0, name)[2:] for name in self.NAMES]
            answers = [
                dns.build_response(0, name, ["203.0.113.10"])[2:]
                for name in self.NAMES
            ]
            emitter.udp_batch(
                times, self.mac, GATEWAY_MAC, self.ip, GATEWAY_IP,
                sports, dns.DNS_PORT,
                payloads=[
                    txid_blob[2 * i : 2 * i + 2] + queries[k]
                    for i, k in enumerate(chosen)
                ],
            )
            emitter.udp_batch(
                times + delays, GATEWAY_MAC, self.mac, GATEWAY_IP, self.ip,
                dns.DNS_PORT, sports,
                payloads=[
                    txid_blob[2 * i : 2 * i + 2] + answers[k]
                    for i, k in enumerate(chosen)
                ],
            )
        return emitter.packets()


class ThreadSensor(DeviceModel):
    """Thread-style sensor: CoAP observations over UDP/IPv6.

    Matter/Thread devices speak CoAP over IPv6 ULAs to a border router;
    this model emits that traffic (CON telemetry PUTs + ACKs), giving the
    trace generators an IPv6 flavour of the CoAP family.
    """

    BORDER_ROUTER = "fd00::1"

    def __init__(self, index: int, *, period: float = 1.5):
        super().__init__(index, "thread-sensor")
        self.period = period
        self.ip6 = f"fd00::{10 + index:x}"

    def generate(self, rng, start, duration):
        emitter = self._emitter()
        t = start + float(rng.uniform(0, self.period))
        end = start + duration
        message_id = int(rng.integers(0, 0xFFFF))
        sport = int(rng.integers(49152, 65535))
        while t < end:
            message_id = (message_id + 1) & 0xFFFF
            token = bytes(rng.integers(0, 256, size=2, dtype=np.uint8))
            reading = f"{rng.normal(45.0, 5.0):.1f}".encode()
            request = coap.build_message(
                msg_type=coap.CON,
                code=coap.PUT,
                message_id=message_id,
                token=token,
                options=[(coap.OPTION_URI_PATH, b"telemetry")],
                payload=reading,
            )
            emitter.udp6(
                t, self.mac, GATEWAY_MAC, self.ip6, self.BORDER_ROUTER,
                sport, coap.COAP_PORT, payload=request,
            )
            ack = coap.build_message(
                msg_type=coap.ACK,
                code=coap.CONTENT,
                message_id=message_id,
                token=token,
            )
            emitter.udp6(
                t + float(rng.uniform(0.002, 0.02)),
                GATEWAY_MAC, self.mac, self.BORDER_ROUTER, self.ip6,
                coap.COAP_PORT, sport, payload=ack,
            )
            t += float(rng.uniform(0.5, 1.5)) * self.period
        return emitter.packets()


class NetworkChatter(DeviceModel):
    """Background L2/L3 housekeeping: ARP resolution and liveness pings.

    Emits the benign ARP request/reply and ICMP echo exchanges every LAN
    carries, so ARP-spoofing and ping-flood attacks cannot be separated by
    the mere presence of those protocols.
    """

    def __init__(self, index: int, *, period: float = 2.0):
        super().__init__(index, "net-chatter")
        self.period = period

    def generate(self, rng, start, duration):
        emitter = self._emitter()
        first = start + float(rng.uniform(0, self.period))
        times = uniform_chain(
            rng, first, start + duration,
            0.5 * self.period, 1.5 * self.period,
        )
        n = len(times)
        if not n:
            return emitter.packets()
        arp_turn = rng.random(n) < 0.5
        arp_times = times[arp_turn]
        if len(arp_times):
            # Device ARPs for the gateway; gateway replies.
            emitter.arp_batch(
                arp_times, "ff:ff:ff:ff:ff:ff", self.mac,
                sender_macs=self.mac, sender_ips=self.ip,
                target_macs="00:00:00:00:00:00", target_ips=GATEWAY_IP,
            )
            emitter.arp_batch(
                arp_times + rng.uniform(0.001, 0.01, size=len(arp_times)),
                self.mac, GATEWAY_MAC,
                sender_macs=GATEWAY_MAC, sender_ips=GATEWAY_IP,
                target_macs=self.mac, target_ips=self.ip,
                requests=False,
            )
        ping_times = times[~arp_turn]
        if len(ping_times):
            # Gateway pings the device; device answers.
            sequences = (np.arange(len(ping_times)) + 1) & 0xFFFF
            ident = 0x4242 + self.index
            emitter.icmp_echo_batch(
                ping_times, self.mac, GATEWAY_MAC, GATEWAY_IP, self.ip,
                identifiers=ident, sequences=sequences, payloads=b"liveness",
            )
            emitter.icmp_echo_batch(
                ping_times + rng.uniform(0.001, 0.02, size=len(ping_times)),
                GATEWAY_MAC, self.mac, self.ip, GATEWAY_IP,
                replies=True, identifiers=ident, sequences=sequences,
                payloads=b"liveness",
            )
        return emitter.packets()


class PlcPoller(DeviceModel):
    """Industrial SCADA poller: the gateway reads PLC holding registers.

    Periodic Modbus/TCP FC-3 request/response pairs over a long-lived TCP
    session — the benign pattern a write-storm attack must be separated
    from on byte evidence (function code, value fields), since both use
    port 502 from LAN hosts.
    """

    def __init__(self, index: int, *, period: float = 1.0):
        super().__init__(index, "plc-poller")
        self.period = period
        self.unit_id = 1 + index % 4

    def generate(self, rng, start, duration):
        emitter = self._emitter()
        session = TcpSession(
            GATEWAY_MAC,
            self.mac,
            GATEWAY_IP,
            self.ip,
            int(rng.integers(49152, 65535)),
            modbus.MODBUS_PORT,
            seq=int(rng.integers(0, 2**32)),
            peer_seq=int(rng.integers(0, 2**32)),
        )
        t = start + float(rng.uniform(0, self.period))
        for flags, reverse in TCP_HANDSHAKE:
            session.emit(emitter, t, b"", flags, reverse=reverse)
            t += float(rng.uniform(0.0005, 0.003))
        end = start + duration
        transaction = int(rng.integers(0, 0xFFFF))
        while t < end:
            transaction = (transaction + 1) & 0xFFFF
            request = modbus.build_read_holding_request(
                transaction, self.unit_id, address=0x0000, count=8
            )
            session.emit(emitter, t, request, PSH_ACK)
            values = [int(v) for v in rng.integers(0, 1000, size=8)]
            response = modbus.build_read_holding_response(
                transaction, self.unit_id, values
            )
            session.emit(
                emitter, t + float(rng.uniform(0.002, 0.01)), response,
                PSH_ACK, reverse=True,
            )
            t += float(rng.uniform(0.5, 1.5)) * self.period
        return emitter.packets()


class ZigbeeSensor(DeviceModel):
    """Zigbee end device reporting an attribute to the coordinator."""

    COORDINATOR = 0x0000

    def __init__(self, index: int, *, period: float = 0.8,
                 cluster: int = zigbee.CLUSTER_TEMPERATURE):
        super().__init__(index, "zigbee-sensor")
        self.short_addr = 0x1000 + index
        self.period = period
        self.cluster = cluster

    def generate(self, rng, start, duration):
        t = start + float(rng.uniform(0, self.period))
        end = start + duration
        counter = int(rng.integers(0, 256))
        while t < end:
            counter = (counter + 1) & 0xFF
            # ZCL-ish report: frame control, seq, report-attributes command,
            # attr id 0x0000, type int16, value.
            value = int(rng.normal(2100, 150))
            payload = bytes([0x18, counter, 0x0A, 0x00, 0x00, 0x29])
            payload += max(0, min(0xFFFF, value)).to_bytes(2, "big")
            frame = zigbee.build_frame(
                src_addr=self.short_addr,
                dst_addr=self.COORDINATOR,
                mac_sequence=counter,
                nwk_sequence=counter,
                aps_counter=counter,
                cluster_id=self.cluster,
                payload=payload,
            )
            yield self._label(frame, t)
            t += float(rng.uniform(0.5, 1.5)) * self.period


class BleWearable(DeviceModel):
    """BLE peripheral sending notifications and answering reads."""

    def __init__(self, index: int, *, period: float = 0.4):
        super().__init__(index, "ble-wearable")
        self.access_addr = 0x8E89BE00 + index
        self.period = period

    def generate(self, rng, start, duration):
        t = start + float(rng.uniform(0, self.period))
        end = start + duration
        sn = 0
        while t < end:
            heart_rate = int(np.clip(rng.normal(72, 8), 40, 180))
            pdu = ble.build_att_pdu(
                ble.ATT_NOTIFY, 0x0012, bytes([0x00, heart_rate])
            )
            yield self._label(
                ble.build_frame(access_addr=self.access_addr, att_pdu=pdu, sn=sn),
                t,
            )
            sn ^= 1
            if rng.random() < 0.1:  # occasional battery read by the hub
                read = ble.build_att_pdu(ble.ATT_READ_REQ, 0x0020)
                yield self._label(
                    ble.build_frame(access_addr=self.access_addr, att_pdu=read, sn=sn),
                    t + 0.01,
                )
                sn ^= 1
                rsp = ble.build_att_pdu(
                    ble.ATT_READ_RSP, 0x0020, bytes([int(rng.integers(20, 100))])
                )
                yield self._label(
                    ble.build_frame(access_addr=self.access_addr, att_pdu=rsp, sn=sn),
                    t + 0.02,
                )
                sn ^= 1
            t += float(rng.uniform(0.5, 1.5)) * self.period
