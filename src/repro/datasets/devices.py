"""Benign IoT device behaviour models.

Each model emits the timestamped, byte-exact packets one device produces
over a time window: MQTT sensors publishing telemetry, CoAP smart plugs,
UDP cameras, DNS lookups, and full TCP session lifecycles (so SYN packets
also appear in *benign* traffic — attacks must not be separable by the SYN
flag alone).  Non-IP models emit Zigbee-like and BLE-like frames.

All randomness flows through the caller's ``numpy`` Generator, so traces
are reproducible from a seed.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List

import numpy as np

from repro.net.packet import Packet
from repro.net.protocols import ble, coap, dns, inet, modbus, mqtt, zigbee

__all__ = [
    "GATEWAY_MAC",
    "GATEWAY_IP",
    "DeviceModel",
    "MqttSensor",
    "CoapPlug",
    "UdpCamera",
    "DnsClient",
    "ThreadSensor",
    "NetworkChatter",
    "PlcPoller",
    "ZigbeeSensor",
    "BleWearable",
    "TcpSession",
]

GATEWAY_MAC = "02:00:00:00:00:01"
GATEWAY_IP = "192.168.1.1"
BROKER_PORT = mqtt.MQTT_PORT


def device_mac(index: int) -> str:
    """Deterministic locally administered MAC for device ``index``."""
    return f"02:00:00:00:01:{index % 256:02x}"


def device_ip(index: int) -> str:
    """Deterministic LAN address for device ``index``."""
    return f"192.168.1.{10 + (index % 240)}"


@dataclasses.dataclass
class TcpSession:
    """Helper that emits a full TCP session lifecycle as raw frames.

    Produces SYN / SYN-ACK / ACK, then data segments with advancing
    sequence numbers, then FIN-ACK teardown — benign traffic therefore
    contains every TCP flag combination attacks also use.
    """

    src_mac: str
    dst_mac: str
    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    seq: int = 0
    peer_seq: int = 0
    ip_id: int = 1

    def _frame(self, payload: bytes, flags: int, *, reverse: bool = False) -> bytes:
        self.ip_id = (self.ip_id + 1) & 0xFFFF
        if reverse:
            frame = inet.build_tcp_packet(
                self.dst_mac,
                self.src_mac,
                self.dst_ip,
                self.src_ip,
                self.dst_port,
                self.src_port,
                seq=self.peer_seq,
                ack=self.seq,
                flags=flags,
                identification=self.ip_id,
                payload=payload,
            )
            self.peer_seq = (self.peer_seq + max(len(payload), 1 if flags & (inet.TCP_SYN | inet.TCP_FIN) else 0)) & 0xFFFFFFFF
            if not payload and not flags & (inet.TCP_SYN | inet.TCP_FIN):
                pass
            return frame
        frame = inet.build_tcp_packet(
            self.src_mac,
            self.dst_mac,
            self.src_ip,
            self.dst_ip,
            self.src_port,
            self.dst_port,
            seq=self.seq,
            ack=self.peer_seq,
            flags=flags,
            identification=self.ip_id,
            payload=payload,
        )
        self.seq = (self.seq + max(len(payload), 1 if flags & (inet.TCP_SYN | inet.TCP_FIN) else 0)) & 0xFFFFFFFF
        return frame

    def handshake(self) -> List[bytes]:
        """SYN, SYN-ACK, ACK frames."""
        return [
            self._frame(b"", inet.TCP_SYN),
            self._frame(b"", inet.TCP_SYN | inet.TCP_ACK, reverse=True),
            self._frame(b"", inet.TCP_ACK),
        ]

    def send(self, payload: bytes) -> bytes:
        """A PSH|ACK data segment from the client."""
        return self._frame(payload, inet.TCP_PSH | inet.TCP_ACK)

    def receive(self, payload: bytes) -> bytes:
        """A PSH|ACK data segment from the server."""
        return self._frame(payload, inet.TCP_PSH | inet.TCP_ACK, reverse=True)

    def teardown(self) -> List[bytes]:
        """FIN-ACK exchange frames."""
        return [
            self._frame(b"", inet.TCP_FIN | inet.TCP_ACK),
            self._frame(b"", inet.TCP_FIN | inet.TCP_ACK, reverse=True),
            self._frame(b"", inet.TCP_ACK),
        ]


class DeviceModel:
    """Base benign device.

    Subclasses implement :meth:`generate`, emitting labelled packets with
    trace-relative timestamps in ``[start, start + duration)``.
    """

    def __init__(self, index: int, name: str):
        self.index = index
        self.name = f"{name}-{index}"
        self.mac = device_mac(index)
        self.ip = device_ip(index)

    def generate(
        self, rng: np.random.Generator, start: float, duration: float
    ) -> Iterator[Packet]:
        raise NotImplementedError

    def _label(self, data: bytes, timestamp: float) -> Packet:
        return Packet(data=data, timestamp=timestamp).with_label("benign", self.name)


class MqttSensor(DeviceModel):
    """Telemetry sensor: CONNECT, periodic PUBLISH, PINGREQ, DISCONNECT."""

    def __init__(self, index: int, *, period: float = 1.0, topic: str = "home/temp"):
        super().__init__(index, "mqtt-sensor")
        self.period = period
        self.topic = f"{topic}/{index}"

    def generate(self, rng, start, duration):
        session = TcpSession(
            self.mac,
            GATEWAY_MAC,
            self.ip,
            GATEWAY_IP,
            int(rng.integers(49152, 65535)),
            BROKER_PORT,
            seq=int(rng.integers(0, 2**32)),
            peer_seq=int(rng.integers(0, 2**32)),
        )
        t = start + float(rng.uniform(0, self.period))
        for frame in session.handshake():
            yield self._label(frame, t)
            t += float(rng.uniform(0.0005, 0.003))
        yield self._label(session.send(mqtt.build_connect(self.name, keep_alive=60)), t)
        t += float(rng.uniform(0.001, 0.01))
        yield self._label(session.receive(mqtt.build_connack()), t)
        end = start + duration
        last_ping = t
        while t < end:
            t += float(rng.uniform(0.5, 1.5)) * self.period
            if t >= end:
                break
            reading = f"{{\"t\":{rng.normal(21.0, 2.0):.2f}}}".encode()
            yield self._label(
                session.send(mqtt.build_publish(self.topic, reading)), t
            )
            if t - last_ping > 30.0:
                yield self._label(session.send(mqtt.build_pingreq()), t + 0.01)
                last_ping = t
        yield self._label(session.send(mqtt.build_disconnect()), min(t, end - 1e-3))
        for frame in session.teardown():
            yield self._label(frame, min(t + 0.01, end - 1e-4))


class CoapPlug(DeviceModel):
    """Smart plug polled over CoAP: CON GET → ACK 2.05 exchanges."""

    def __init__(self, index: int, *, period: float = 1.5):
        super().__init__(index, "coap-plug")
        self.period = period

    def generate(self, rng, start, duration):
        t = start + float(rng.uniform(0, self.period))
        end = start + duration
        message_id = int(rng.integers(0, 0xFFFF))
        while t < end:
            token = bytes(rng.integers(0, 256, size=4, dtype=np.uint8))
            message_id = (message_id + 1) & 0xFFFF
            request = coap.build_message(
                msg_type=coap.CON,
                code=coap.GET,
                message_id=message_id,
                token=token,
                options=[(coap.OPTION_URI_PATH, b"state")],
            )
            sport = int(rng.integers(49152, 65535))
            yield self._label(
                inet.build_udp_packet(
                    GATEWAY_MAC, self.mac, GATEWAY_IP, self.ip,
                    sport, coap.COAP_PORT, payload=request,
                ),
                t,
            )
            response = coap.build_message(
                msg_type=coap.ACK,
                code=coap.CONTENT,
                message_id=message_id,
                token=token,
                options=[(coap.OPTION_CONTENT_FORMAT, b"\x00")],
                payload=b"on" if rng.random() < 0.5 else b"off",
            )
            yield self._label(
                inet.build_udp_packet(
                    self.mac, GATEWAY_MAC, self.ip, GATEWAY_IP,
                    coap.COAP_PORT, sport, payload=response,
                ),
                t + float(rng.uniform(0.002, 0.02)),
            )
            t += float(rng.uniform(0.5, 1.5)) * self.period


class UdpCamera(DeviceModel):
    """Camera streaming RTP-like UDP packets to the gateway."""

    RTP_PORT = 5004

    def __init__(self, index: int, *, fps: float = 6.0):
        super().__init__(index, "udp-camera")
        self.fps = fps

    def generate(self, rng, start, duration):
        t = start + float(rng.uniform(0, 1.0 / self.fps))
        end = start + duration
        sequence = int(rng.integers(0, 0xFFFF))
        sport = int(rng.integers(49152, 65535))
        while t < end:
            sequence = (sequence + 1) & 0xFFFF
            # RTP-ish header: V=2, PT=96, sequence, timestamp, SSRC.
            header = bytes([0x80, 96]) + sequence.to_bytes(2, "big")
            header += int(t * 90000).to_bytes(4, "big", signed=False)[-4:]
            header += (0x1000 + self.index).to_bytes(4, "big")
            body = bytes(rng.integers(0, 256, size=int(rng.integers(200, 400)), dtype=np.uint8))
            yield self._label(
                inet.build_udp_packet(
                    self.mac, GATEWAY_MAC, self.ip, GATEWAY_IP,
                    sport, self.RTP_PORT, payload=header + body,
                ),
                t,
            )
            t += float(rng.exponential(1.0 / self.fps))


class DnsClient(DeviceModel):
    """Device resolving its cloud endpoints now and then."""

    NAMES = ["api.cloud.example", "time.cloud.example", "fw.vendor.example"]

    def __init__(self, index: int, *, period: float = 6.0):
        super().__init__(index, "dns-client")
        self.period = period

    def generate(self, rng, start, duration):
        t = start + float(rng.uniform(0, self.period))
        end = start + duration
        while t < end:
            txid = int(rng.integers(0, 0xFFFF))
            name = self.NAMES[int(rng.integers(0, len(self.NAMES)))]
            sport = int(rng.integers(49152, 65535))
            yield self._label(
                inet.build_udp_packet(
                    self.mac, GATEWAY_MAC, self.ip, GATEWAY_IP,
                    sport, dns.DNS_PORT, payload=dns.build_query(txid, name),
                ),
                t,
            )
            yield self._label(
                inet.build_udp_packet(
                    GATEWAY_MAC, self.mac, GATEWAY_IP, self.ip,
                    dns.DNS_PORT, sport,
                    payload=dns.build_response(txid, name, ["203.0.113.10"]),
                ),
                t + float(rng.uniform(0.005, 0.05)),
            )
            t += float(rng.uniform(0.5, 1.5)) * self.period


class ThreadSensor(DeviceModel):
    """Thread-style sensor: CoAP observations over UDP/IPv6.

    Matter/Thread devices speak CoAP over IPv6 ULAs to a border router;
    this model emits that traffic (CON telemetry PUTs + ACKs), giving the
    trace generators an IPv6 flavour of the CoAP family.
    """

    BORDER_ROUTER = "fd00::1"

    def __init__(self, index: int, *, period: float = 1.5):
        super().__init__(index, "thread-sensor")
        self.period = period
        self.ip6 = f"fd00::{10 + index:x}"

    def generate(self, rng, start, duration):
        t = start + float(rng.uniform(0, self.period))
        end = start + duration
        message_id = int(rng.integers(0, 0xFFFF))
        sport = int(rng.integers(49152, 65535))
        while t < end:
            message_id = (message_id + 1) & 0xFFFF
            token = bytes(rng.integers(0, 256, size=2, dtype=np.uint8))
            reading = f"{rng.normal(45.0, 5.0):.1f}".encode()
            request = coap.build_message(
                msg_type=coap.CON,
                code=coap.PUT,
                message_id=message_id,
                token=token,
                options=[(coap.OPTION_URI_PATH, b"telemetry")],
                payload=reading,
            )
            yield self._label(
                inet.build_udp6_packet(
                    self.mac, GATEWAY_MAC, self.ip6, self.BORDER_ROUTER,
                    sport, coap.COAP_PORT, payload=request,
                ),
                t,
            )
            ack = coap.build_message(
                msg_type=coap.ACK,
                code=coap.CONTENT,
                message_id=message_id,
                token=token,
            )
            yield self._label(
                inet.build_udp6_packet(
                    GATEWAY_MAC, self.mac, self.BORDER_ROUTER, self.ip6,
                    coap.COAP_PORT, sport, payload=ack,
                ),
                t + float(rng.uniform(0.002, 0.02)),
            )
            t += float(rng.uniform(0.5, 1.5)) * self.period


class NetworkChatter(DeviceModel):
    """Background L2/L3 housekeeping: ARP resolution and liveness pings.

    Emits the benign ARP request/reply and ICMP echo exchanges every LAN
    carries, so ARP-spoofing and ping-flood attacks cannot be separated by
    the mere presence of those protocols.
    """

    def __init__(self, index: int, *, period: float = 2.0):
        super().__init__(index, "net-chatter")
        self.period = period

    def generate(self, rng, start, duration):
        t = start + float(rng.uniform(0, self.period))
        end = start + duration
        sequence = 0
        while t < end:
            if rng.random() < 0.5:
                # Device ARPs for the gateway; gateway replies.
                request = inet.build_arp(
                    self.mac, self.ip, "00:00:00:00:00:00", GATEWAY_IP
                )
                yield self._label(
                    inet.build_ethernet(
                        "ff:ff:ff:ff:ff:ff", self.mac, inet.ETHERTYPE_ARP, request
                    ),
                    t,
                )
                reply = inet.build_arp(
                    GATEWAY_MAC, GATEWAY_IP, self.mac, self.ip, request=False
                )
                yield self._label(
                    inet.build_ethernet(
                        self.mac, GATEWAY_MAC, inet.ETHERTYPE_ARP, reply
                    ),
                    t + float(rng.uniform(0.001, 0.01)),
                )
            else:
                # Gateway pings the device; device answers.
                sequence = (sequence + 1) & 0xFFFF
                ident = 0x4242 + self.index
                echo = inet.build_icmp_echo(ident, sequence, b"liveness")
                ip_out = inet.build_ipv4(
                    GATEWAY_IP, self.ip, inet.PROTO_ICMP, echo
                )
                yield self._label(
                    inet.build_ethernet(
                        self.mac, GATEWAY_MAC, inet.ETHERTYPE_IPV4, ip_out
                    ),
                    t,
                )
                answer = inet.build_icmp_echo(ident, sequence, b"liveness", reply=True)
                ip_back = inet.build_ipv4(
                    self.ip, GATEWAY_IP, inet.PROTO_ICMP, answer
                )
                yield self._label(
                    inet.build_ethernet(
                        GATEWAY_MAC, self.mac, inet.ETHERTYPE_IPV4, ip_back
                    ),
                    t + float(rng.uniform(0.001, 0.02)),
                )
            t += float(rng.uniform(0.5, 1.5)) * self.period


class PlcPoller(DeviceModel):
    """Industrial SCADA poller: the gateway reads PLC holding registers.

    Periodic Modbus/TCP FC-3 request/response pairs over a long-lived TCP
    session — the benign pattern a write-storm attack must be separated
    from on byte evidence (function code, value fields), since both use
    port 502 from LAN hosts.
    """

    def __init__(self, index: int, *, period: float = 1.0):
        super().__init__(index, "plc-poller")
        self.period = period
        self.unit_id = 1 + index % 4

    def generate(self, rng, start, duration):
        session = TcpSession(
            GATEWAY_MAC,
            self.mac,
            GATEWAY_IP,
            self.ip,
            int(rng.integers(49152, 65535)),
            modbus.MODBUS_PORT,
            seq=int(rng.integers(0, 2**32)),
            peer_seq=int(rng.integers(0, 2**32)),
        )
        t = start + float(rng.uniform(0, self.period))
        for frame in session.handshake():
            yield self._label(frame, t)
            t += float(rng.uniform(0.0005, 0.003))
        end = start + duration
        transaction = int(rng.integers(0, 0xFFFF))
        while t < end:
            transaction = (transaction + 1) & 0xFFFF
            request = modbus.build_read_holding_request(
                transaction, self.unit_id, address=0x0000, count=8
            )
            yield self._label(session.send(request), t)
            values = [int(v) for v in rng.integers(0, 1000, size=8)]
            response = modbus.build_read_holding_response(
                transaction, self.unit_id, values
            )
            yield self._label(session.receive(response), t + float(rng.uniform(0.002, 0.01)))
            t += float(rng.uniform(0.5, 1.5)) * self.period


class ZigbeeSensor(DeviceModel):
    """Zigbee end device reporting an attribute to the coordinator."""

    COORDINATOR = 0x0000

    def __init__(self, index: int, *, period: float = 0.8,
                 cluster: int = zigbee.CLUSTER_TEMPERATURE):
        super().__init__(index, "zigbee-sensor")
        self.short_addr = 0x1000 + index
        self.period = period
        self.cluster = cluster

    def generate(self, rng, start, duration):
        t = start + float(rng.uniform(0, self.period))
        end = start + duration
        counter = int(rng.integers(0, 256))
        while t < end:
            counter = (counter + 1) & 0xFF
            # ZCL-ish report: frame control, seq, report-attributes command,
            # attr id 0x0000, type int16, value.
            value = int(rng.normal(2100, 150))
            payload = bytes([0x18, counter, 0x0A, 0x00, 0x00, 0x29])
            payload += max(0, min(0xFFFF, value)).to_bytes(2, "big")
            frame = zigbee.build_frame(
                src_addr=self.short_addr,
                dst_addr=self.COORDINATOR,
                mac_sequence=counter,
                nwk_sequence=counter,
                aps_counter=counter,
                cluster_id=self.cluster,
                payload=payload,
            )
            yield self._label(frame, t)
            t += float(rng.uniform(0.5, 1.5)) * self.period


class BleWearable(DeviceModel):
    """BLE peripheral sending notifications and answering reads."""

    def __init__(self, index: int, *, period: float = 0.4):
        super().__init__(index, "ble-wearable")
        self.access_addr = 0x8E89BE00 + index
        self.period = period

    def generate(self, rng, start, duration):
        t = start + float(rng.uniform(0, self.period))
        end = start + duration
        sn = 0
        while t < end:
            heart_rate = int(np.clip(rng.normal(72, 8), 40, 180))
            pdu = ble.build_att_pdu(
                ble.ATT_NOTIFY, 0x0012, bytes([0x00, heart_rate])
            )
            yield self._label(
                ble.build_frame(access_addr=self.access_addr, att_pdu=pdu, sn=sn),
                t,
            )
            sn ^= 1
            if rng.random() < 0.1:  # occasional battery read by the hub
                read = ble.build_att_pdu(ble.ATT_READ_REQ, 0x0020)
                yield self._label(
                    ble.build_frame(access_addr=self.access_addr, att_pdu=read, sn=sn),
                    t + 0.01,
                )
                sn ^= 1
                rsp = ble.build_att_pdu(
                    ble.ATT_READ_RSP, 0x0020, bytes([int(rng.integers(20, 100))])
                )
                yield self._label(
                    ble.build_frame(access_addr=self.access_addr, att_pdu=rsp, sn=sn),
                    t + 0.02,
                )
                sn ^= 1
            t += float(rng.uniform(0.5, 1.5)) * self.period
