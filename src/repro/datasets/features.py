"""Raw-byte feature extraction and label encoding.

The paper's premise: take the first *n* bytes of every packet (zero-padded),
treat each byte position as a feature.  No protocol parsing, so the same
extractor works for any stack — the P4 data plane can reproduce exactly this
view by slicing the packet.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.net.packet import BENIGN, Packet

__all__ = ["DEFAULT_SPLIT_SEED", "FeatureExtractor", "LabelEncoder", "train_test_split"]

#: Seed for the shuffle split when no rng is supplied.
DEFAULT_SPLIT_SEED = 0


@dataclasses.dataclass
class FeatureExtractor:
    """Packets → ``(n_packets, n_bytes)`` float matrix in [0, 1].

    Attributes:
        n_bytes: how many leading bytes to keep (missing bytes read as 0,
            matching :meth:`repro.net.packet.Packet.byte_at`).
        scale: divide byte values by 255 so gradients are well-conditioned.
    """

    n_bytes: int = 64
    scale: bool = True

    def __post_init__(self) -> None:
        if self.n_bytes <= 0:
            raise ValueError("n_bytes must be positive")

    def _byte_matrix(self, packets: Sequence[Packet]) -> np.ndarray:
        """One ``frombuffer`` over a single zero-padded concatenation."""
        width = self.n_bytes
        if not len(packets):
            return np.zeros((0, width), dtype=np.uint8)
        padded = b"".join(p.data[:width].ljust(width, b"\x00") for p in packets)
        return np.frombuffer(padded, dtype=np.uint8).reshape(len(packets), width)

    def transform(self, packets: Sequence[Packet]) -> np.ndarray:
        """Vectorise ``packets`` (row order preserved)."""
        out = self._byte_matrix(packets).astype(np.float64)
        if self.scale:
            out /= 255.0
        return out

    def transform_bytes(self, packets: Sequence[Packet]) -> np.ndarray:
        """Unscaled uint8 view (used when emitting rules in byte units)."""
        return self._byte_matrix(packets).copy()  # writable

    def to_model_units(self, byte_value: float) -> float:
        """Convert a raw byte value into the model's input units."""
        return byte_value / 255.0 if self.scale else float(byte_value)


class LabelEncoder:
    """Bidirectional mapping between category strings and int classes.

    Class 0 is always ``"benign"`` so binary collapse (attack vs. benign)
    is ``label != 0``.
    """

    def __init__(self, categories: Optional[Iterable[str]] = None):
        self._to_index: Dict[str, int] = {BENIGN: 0}
        self._to_name: List[str] = [BENIGN]
        for category in categories or []:
            self.add(category)

    def add(self, category: str) -> int:
        """Register a category (idempotent); returns its index."""
        if category not in self._to_index:
            self._to_index[category] = len(self._to_name)
            self._to_name.append(category)
        return self._to_index[category]

    def fit(self, packets: Sequence[Packet]) -> "LabelEncoder":
        """Register every category appearing in ``packets`` (sorted order)."""
        for category in sorted({p.label.category for p in packets}):
            self.add(category)
        return self

    def encode(self, packets: Sequence[Packet]) -> np.ndarray:
        """Packets → int class vector.

        Raises:
            KeyError: for a category never registered.
        """
        index = self._to_index
        return np.fromiter(
            (index[p.label.category] for p in packets),
            dtype=np.int64,
            count=len(packets),
        )

    def encode_binary(self, packets: Sequence[Packet]) -> np.ndarray:
        """Packets → {0 benign, 1 attack}."""
        return np.fromiter(
            (p.label.category != BENIGN for p in packets),
            dtype=np.int64,
            count=len(packets),
        )

    def decode(self, index: int) -> str:
        return self._to_name[index]

    @property
    def classes(self) -> List[str]:
        return list(self._to_name)

    @property
    def num_classes(self) -> int:
        return len(self._to_name)


def train_test_split(
    packets: Sequence[Packet],
    *,
    test_fraction: float = 0.3,
    rng: Optional[np.random.Generator] = None,
    method: str = "shuffle",
) -> Tuple[List[Packet], List[Packet]]:
    """Split a trace into train/test packets.

    Args:
        method: ``"shuffle"`` (uniform random; class ratios preserved
            within noise) or ``"time"`` (train on the first
            ``1 - test_fraction`` of the capture by timestamp, test on the
            rest — the deployment-realistic protocol where the model never
            sees the future).
        rng: source of shuffle randomness.  When omitted a *seeded*
            generator is used so two calls with the same packets produce
            the same split — an unseeded default here made every dataset
            built without an explicit rng irreproducible.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    if method not in ("shuffle", "time"):
        raise ValueError(f"unknown split method {method!r}")
    cut = int(round(len(packets) * (1.0 - test_fraction)))
    if method == "time":
        ordered = sorted(packets, key=lambda p: p.timestamp)
        return list(ordered[:cut]), list(ordered[cut:])
    if rng is None:
        rng = np.random.default_rng(DEFAULT_SPLIT_SEED)
    order = rng.permutation(len(packets))
    train = [packets[i] for i in order[:cut]]
    test = [packets[i] for i in order[cut:]]
    return train, test
