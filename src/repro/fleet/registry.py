"""Train-once, versioned, content-addressed detector registry.

A fleet serves many device classes; each class's detector is trained
once, versioned, and pulled by name at deploy time — the registry is
the handoff point between the training host and every gateway, the way
a model registry sits between a training pipeline and its serving
fleet.  Storage is plain files so artifacts move with ``rsync``:

``<root>/objects/<sha256>.json``
    The rule-set artifact itself (the versioned
    :mod:`repro.core.serialize` format), named by the SHA-256 of its
    canonical JSON — identical rule sets share one object, and a
    corrupted object is detected on load (digest mismatch).

``<root>/index.json``
    ``device_class -> [version records]``, each carrying the version
    number (1-based, monotonically increasing per class), the object
    digest, creation timestamp, and summary stats.  Written atomically
    (tmp + rename) so a crashed writer never leaves a torn index.

References are ``"camera"`` (latest version), ``"camera@2"`` (exact),
or ``"camera@latest"``.  The ``repro registry`` CLI wraps
:meth:`DetectorRegistry.train` / ``list`` / ``show`` / ``rm``; see
docs/OPERATIONS.md for the operator workflow.
"""

from __future__ import annotations

import dataclasses
import datetime
import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro import obs
from repro.core.rules import RuleSet
from repro.core.serialize import ruleset_from_dict, ruleset_to_dict

__all__ = ["ArtifactMeta", "DetectorRegistry", "RegistryError"]


class RegistryError(Exception):
    """Unknown reference, corrupt object, or malformed index."""


@dataclasses.dataclass(frozen=True)
class ArtifactMeta:
    """One registered detector version.

    Attributes:
        device_class: the tenant/device-class name the detector serves.
        version: 1-based version within the class (monotonic).
        digest: SHA-256 of the canonical rule-set JSON (the object name).
        created: ISO-8601 UTC creation timestamp.
        rules: rule count.
        ternary_entries: shared-table entry cost (the capacity
            controller's admission currency).
        offsets: the parser byte offsets the rule set matches on.
        note: free-form operator annotation (accuracy, dataset, ...).
    """

    device_class: str
    version: int
    digest: str
    created: str
    rules: int
    ternary_entries: int
    offsets: Tuple[int, ...]
    note: str = ""

    @property
    def ref(self) -> str:
        return f"{self.device_class}@{self.version}"

    def to_dict(self) -> Dict[str, object]:
        data = dataclasses.asdict(self)
        data["offsets"] = list(self.offsets)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ArtifactMeta":
        payload = dict(data)
        payload["offsets"] = tuple(int(o) for o in payload.get("offsets", ()))
        return cls(**payload)


def _canonical(rules: RuleSet) -> bytes:
    return json.dumps(
        ruleset_to_dict(rules), sort_keys=True, separators=(",", ":")
    ).encode()


def _utcnow() -> str:
    return datetime.datetime.now(datetime.timezone.utc).isoformat(
        timespec="seconds"
    )


class DetectorRegistry:
    """Filesystem-backed registry of per-device-class rule sets.

    Args:
        root: registry directory (created on first write).
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self._objects = self.root / "objects"
        self._index_path = self.root / "index.json"

    # -- index ---------------------------------------------------------------

    def _load_index(self) -> Dict[str, List[Dict[str, object]]]:
        if not self._index_path.exists():
            return {}
        try:
            data = json.loads(self._index_path.read_text(encoding="utf-8"))
        except (ValueError, OSError) as exc:
            raise RegistryError(f"unreadable index {self._index_path}: {exc}")
        if not isinstance(data, dict):
            raise RegistryError(f"malformed index {self._index_path}")
        return data

    def _save_index(self, index: Dict[str, List[Dict[str, object]]]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self._index_path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(index, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, self._index_path)
        self._note_artifacts(index)

    def _note_artifacts(self, index) -> None:
        registry = obs.registry()
        if registry.enabled:
            registry.gauge(
                "fleet_registry_artifacts",
                help="detector versions stored in the registry",
            ).set(sum(len(v) for v in index.values()))

    def _note_op(self, op: str) -> None:
        registry = obs.registry()
        if registry.enabled:
            registry.counter(
                "fleet_registry_ops_total", {"op": op},
                help="registry operations by kind",
            ).inc()

    # -- objects -------------------------------------------------------------

    def _object_path(self, digest: str) -> Path:
        return self._objects / f"{digest}.json"

    def _store_object(self, rules: RuleSet) -> str:
        blob = _canonical(rules)
        digest = hashlib.sha256(blob).hexdigest()
        path = self._object_path(digest)
        if not path.exists():
            self._objects.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".json.tmp")
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        return digest

    def _load_object(self, digest: str) -> RuleSet:
        path = self._object_path(digest)
        if not path.exists():
            raise RegistryError(f"missing object {digest[:12]}… in {self.root}")
        blob = path.read_bytes()
        actual = hashlib.sha256(blob).hexdigest()
        if actual != digest:
            raise RegistryError(
                f"corrupt object {digest[:12]}…: content hashes to "
                f"{actual[:12]}…"
            )
        return ruleset_from_dict(json.loads(blob.decode()))

    # -- public API ----------------------------------------------------------

    def put(
        self, device_class: str, rules: RuleSet, *, note: str = ""
    ) -> ArtifactMeta:
        """Register a new version of a device class's detector."""
        if not device_class or "@" in device_class:
            raise RegistryError(
                f"invalid device class {device_class!r} ('@' is reserved)"
            )
        index = self._load_index()
        versions = index.setdefault(device_class, [])
        next_version = 1 + max(
            (int(v["version"]) for v in versions), default=0
        )
        digest = self._store_object(rules)
        report = rules.resource_report()
        meta = ArtifactMeta(
            device_class=device_class,
            version=next_version,
            digest=digest,
            created=_utcnow(),
            rules=report["rules"],
            ternary_entries=report["ternary_entries"],
            offsets=tuple(rules.offsets),
            note=note,
        )
        versions.append(meta.to_dict())
        self._save_index(index)
        self._note_op("put")
        return meta

    def parse_ref(self, ref: str) -> Tuple[str, Optional[int]]:
        """``"cls"`` / ``"cls@3"`` / ``"cls@latest"`` → (class, version?)."""
        name, sep, version = ref.partition("@")
        if not name:
            raise RegistryError(f"invalid reference {ref!r}")
        if not sep or version == "latest":
            return name, None
        try:
            return name, int(version)
        except ValueError:
            raise RegistryError(f"invalid version in reference {ref!r}")

    def meta(self, ref: str) -> ArtifactMeta:
        """Resolve a reference to its artifact metadata."""
        name, version = self.parse_ref(ref)
        index = self._load_index()
        versions = index.get(name)
        if not versions:
            raise RegistryError(f"unknown device class {name!r} in {self.root}")
        if version is None:
            record = max(versions, key=lambda v: int(v["version"]))
        else:
            matches = [v for v in versions if int(v["version"]) == version]
            if not matches:
                raise RegistryError(f"no version {version} of {name!r}")
            record = matches[0]
        return ArtifactMeta.from_dict(record)

    def get(self, ref: str) -> Tuple[RuleSet, ArtifactMeta]:
        """Load a rule set (digest-verified) and its metadata."""
        meta = self.meta(ref)
        rules = self._load_object(meta.digest)
        self._note_op("get")
        return rules, meta

    def list(self, device_class: Optional[str] = None) -> List[ArtifactMeta]:
        """All artifacts, newest version last, grouped by class name."""
        index = self._load_index()
        classes = (
            [device_class] if device_class is not None else sorted(index)
        )
        result: List[ArtifactMeta] = []
        for name in classes:
            for record in sorted(
                index.get(name, ()), key=lambda v: int(v["version"])
            ):
                result.append(ArtifactMeta.from_dict(record))
        return result

    def rm(self, ref: str) -> int:
        """Delete one version (``cls@v``) or a whole class (``cls``).

        Returns the number of versions removed.  Objects no longer
        referenced by any index entry are garbage-collected.
        """
        name, version = self.parse_ref(ref)
        index = self._load_index()
        versions = index.get(name)
        if not versions:
            raise RegistryError(f"unknown device class {name!r} in {self.root}")
        if version is None:
            removed = versions
            kept: List[Dict[str, object]] = []
        else:
            removed = [v for v in versions if int(v["version"]) == version]
            kept = [v for v in versions if int(v["version"]) != version]
            if not removed:
                raise RegistryError(f"no version {version} of {name!r}")
        if kept:
            index[name] = kept
        else:
            del index[name]
        self._save_index(index)
        live = {v["digest"] for vs in index.values() for v in vs}
        for record in removed:
            if record["digest"] not in live:
                self._object_path(str(record["digest"])).unlink(missing_ok=True)
        self._note_op("rm")
        return len(removed)

    def train(
        self,
        device_class: str,
        *,
        stack: str = "inet",
        duration: float = 40.0,
        n_devices: int = 3,
        window: int = 64,
        fields: int = 6,
        seed: int = 0,
        optimize: bool = False,
        note: str = "",
    ) -> ArtifactMeta:
        """Train a detector on a synthetic device-class trace and register it.

        The train-once path of the fleet workflow: synthesize the
        class's labelled trace, fit the two-stage detector, distill the
        rule set, and store it as the next version.  Wrapped in a
        ``registry.train`` span; heavyweight imports stay local so the
        registry's read paths import nothing from the training stack.
        """
        import numpy as np

        from repro.core import DetectorConfig, TwoStageDetector
        from repro.datasets import FeatureExtractor, TraceConfig, make_dataset

        registry = obs.registry()
        with registry.span("registry.train"):
            dataset = make_dataset(
                device_class,
                TraceConfig(
                    stack=stack,
                    duration=duration,
                    n_devices=n_devices,
                    seed=seed,
                ),
                n_bytes=window,
            )
            packets = dataset.train_packets + dataset.test_packets
            labels = np.concatenate(
                [dataset.y_train_binary, dataset.y_test_binary]
            )
            extractor = FeatureExtractor(n_bytes=window)
            x = extractor.transform(packets)
            detector = TwoStageDetector(
                DetectorConfig(n_bytes=window, n_fields=fields, seed=seed)
            )
            detector.fit(x, labels)
            rules = detector.generate_rules()
            if optimize:
                from repro.core import optimize_ruleset

                rules, _ = optimize_ruleset(rules)
        if not note:
            note = (
                f"trained on {len(packets)} {stack} packets "
                f"({int(labels.sum())} attack)"
            )
        return self.put(device_class, rules, note=note)
