"""Multi-tenant fleet serving: route flows to per-tenant rule sets.

:class:`FleetGateway` serves many tenants (device classes) from one
packet stream under one shared table budget.  The pieces:

* a :class:`~repro.fleet.capacity.CapacityController` packs the
  declared tenants' rule sets into the budget (bands, quotas,
  deterministic eviction) before any packet is served;
* a :class:`TenantRouter` assigns every arriving packet to the first
  tenant whose IPv4 source prefix claims it (a catch-all tenant —
  ``src_prefix=None`` — takes the rest);
* each *installed* tenant is served by its own
  :class:`~repro.serve.gateway.StreamingGateway` over its sub-stream —
  the full existing machinery: adaptive batching, bounded queues,
  shedding, compiled classification, inline or process executors, and
  atomic rule swaps via ``ShardSet.install()`` / the worker
  quiesce-barrier;
* traffic for tenants the controller refused (and packets no tenant
  claims) is shed with the configured fail-open/fail-closed policy —
  counted, verdict-stamped, flight-recorded, never silently lost.

**Per-tenant bit-identity.**  Serving is a discrete-event simulation in
stream time: batching deadlines, queue admission, service completions
and shedding are pure functions of each tenant's own arrival
timestamps, and tenants share no stream-time resource (the shared
budget is spent at admission, not per packet).  Tenants are therefore
served one sub-stream at a time — exactly equivalent to any
interleaving — and every tenant's verdicts, decision records (seq =
per-tenant arrival index), and switch stats are *bit-identical* to the
same tenant deployed alone.  The differential suite in
``tests/test_fleet.py`` locks this on both executors.

Accounting invariants: ``offered == routed + unrouted`` and, per
tenant, ``offered == processed + shed`` (inner gateway) — plus the
controller's ``entries offered == installed + evicted``.
"""

from __future__ import annotations

import dataclasses
import ipaddress
import json
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.core.rules import RuleSet
from repro.dataplane.switch import SwitchStats, Verdict
from repro.fleet.capacity import (
    AdmitResult,
    CapacityController,
    TenantAccount,
    TenantSpec,
)
from repro.net.packet import Packet
from repro.obs.events import KIND_SHED, DecisionRecord
from repro.serve.gateway import (
    FAIL_OPEN,
    ServeConfig,
    SoakResult,
    StreamingGateway,
)

__all__ = [
    "FleetGateway",
    "FleetSoakResult",
    "TenantRouter",
    "load_fleet_spec",
]

#: Ethernet/IPv4 source-address geometry the router matches on.
_ETHERTYPE = slice(12, 14)
_IPV4 = b"\x08\x00"
_SRC = slice(26, 30)


class TenantRouter:
    """First-match routing of packets to tenant names.

    Tenants with an IPv4 ``src_prefix`` claim packets whose Ethernet
    frame carries that source address; a ``src_prefix=None`` tenant is
    a catch-all (matches anything, including non-IP frames).  Matching
    is in declaration order; packets no tenant claims route to ``None``
    and are shed by the fleet policy.
    """

    def __init__(self, specs: Sequence[TenantSpec]):
        self._routes: List[Tuple[str, Optional[int], int]] = []
        for spec in specs:
            if spec.src_prefix is None:
                self._routes.append((spec.name, None, 0))
                continue
            network = ipaddress.ip_network(spec.src_prefix, strict=False)
            if network.version != 4:
                raise ValueError(
                    f"tenant {spec.name!r}: only IPv4 prefixes are routable, "
                    f"got {spec.src_prefix!r}"
                )
            self._routes.append(
                (spec.name, int(network.network_address), int(network.netmask))
            )

    def route(self, packet: Packet) -> Optional[str]:
        """Tenant name for this packet, or ``None`` (unrouted)."""
        data = packet.data
        src: Optional[int] = None
        if len(data) >= _SRC.stop and data[_ETHERTYPE] == _IPV4:
            src = int.from_bytes(data[_SRC], "big")
        for name, network, mask in self._routes:
            if network is None:
                return name
            if src is not None and (src & mask) == network:
                return name
        return None


@dataclasses.dataclass
class FleetSoakResult:
    """Outcome of one multi-tenant run.

    Attributes:
        offered: packets the source produced.
        processed: packets classified across all tenant gateways.
        shed: packets refused anywhere — tenant backpressure, traffic
            of tenants the controller did not install, and unrouted
            packets.
        unrouted: packets no tenant's router entry claimed.
        wall_seconds: whole-run wall clock (demux + every tenant).
        per_tenant: each *served* tenant's full :class:`SoakResult`
            (bit-identical to serving that tenant alone).
        shed_tenants: packets shed per tenant that was declared but not
            installed (rejected, displaced, or removed).
        admissions: the capacity controller's decision per tenant.
        accounts: the controller's entry ledger per tenant.
        verdicts: merged per-packet verdicts in global arrival order,
            tenant-tagged (``record_verdicts`` only).
        alerts: SLO alert events fired during the run.
    """

    offered: int
    processed: int
    shed: int
    unrouted: int
    wall_seconds: float
    per_tenant: Dict[str, SoakResult]
    shed_tenants: Dict[str, int]
    admissions: Dict[str, AdmitResult]
    accounts: Dict[str, TenantAccount]
    verdicts: Optional[List[Verdict]] = None
    alerts: List[object] = dataclasses.field(default_factory=list)

    @property
    def rule_swaps(self) -> int:
        return sum(r.rule_swaps for r in self.per_tenant.values())

    @property
    def stats(self) -> SwitchStats:
        """Aggregate switch statistics across every served tenant."""
        return SwitchStats.aggregate(
            [r.stats for r in self.per_tenant.values()]
        )

    def summary(self) -> str:
        served = sum(r.offered for r in self.per_tenant.values())
        lines = [
            f"fleet     {len(self.per_tenant)} tenants served, "
            f"{len(self.shed_tenants)} shed, {self.unrouted} unrouted pkts",
            f"offered   {self.offered} pkts ({served} routed to served "
            f"tenants)",
            f"processed {self.processed} pkts in {self.wall_seconds:.3f}s "
            f"wall",
            f"shed      {self.shed} pkts",
        ]
        for name, result in self.per_tenant.items():
            lines.append(
                f"  tenant {name}: {result.processed} processed, "
                f"{result.shed} shed, verdicts "
                f"{result.stats.allowed}a/{result.stats.dropped}d/"
                f"{result.stats.quarantined}q"
                + (f", {result.rule_swaps} swaps" if result.rule_swaps else "")
            )
        for name, count in self.shed_tenants.items():
            reason = self.accounts[name].reason
            lines.append(f"  tenant {name}: not installed ({reason}), "
                         f"{count} pkts shed")
        if self.alerts:
            lines.append(
                f"alerts    {len(self.alerts)} fired: "
                + ", ".join(sorted({a.name for a in self.alerts}))
            )
        return "\n".join(lines)


#: Called after each tenant's sub-run: (tenant name, its SoakResult or
#: None when the tenant was shed).  May call ``FleetGateway.remove`` to
#: take a later tenant out of service mid-soak.
TenantHook = Callable[[str, Optional[SoakResult]], None]


class FleetGateway:
    """Serve many tenants from one stream under one table budget.

    Example::

        tenants = [
            TenantSpec("cameras", cam_rules, band=1, quota=512,
                       src_prefix="10.1.0.0/16"),
            TenantSpec("sensors", sensor_rules, src_prefix="10.2.0.0/16"),
        ]
        fleet = FleetGateway(tenants, ServeConfig(fleet_capacity=1024))
        result = fleet.run(source)
        print(result.summary())

    Args:
        tenants: tenant specs in declaration (packing + routing) order;
            ``None`` reads ``config.tenants``.
        config: fleet-wide serving policy; per-tenant gateways inherit
            everything except ``table_capacity`` (sized to the tenant's
            installed rule set, never below the configured value).
        capacity: shared table budget in ternary entries; ``None``
            reads ``config.fleet_capacity``, and when that is also
            unset the budget defaults to exactly fitting every declared
            tenant (admission then only enforces quotas).
        recorder: one flight recorder shared across tenants — decision
            and shed records carry the tenant name.
        alert_engine: evaluated after each tenant's sub-run and
            finalized at the end.
        retrain_hooks: per-tenant drift/retrain hooks (tenant name →
            hook) driving mid-stream atomic per-tenant rule swaps via
            the existing ``ShardSet.install()`` / quiesce-barrier path.
        tenant_hook: see :data:`TenantHook`.
    """

    def __init__(
        self,
        tenants: Optional[Sequence[TenantSpec]] = None,
        config: Optional[ServeConfig] = None,
        *,
        capacity: Optional[int] = None,
        recorder=None,
        alert_engine=None,
        retrain_hooks: Optional[Dict[str, Callable]] = None,
        tenant_hook: Optional[TenantHook] = None,
    ):
        self.config = config or ServeConfig()
        specs = tuple(
            tenants if tenants is not None else (self.config.tenants or ())
        )
        if not specs:
            raise ValueError("fleet serving needs at least one TenantSpec")
        budget = capacity or self.config.fleet_capacity
        if budget is None:
            budget = max(1, sum(spec.cost() for spec in specs))
        self.specs: Dict[str, TenantSpec] = {s.name: s for s in specs}
        self.order: List[str] = [s.name for s in specs]
        self.controller = CapacityController(budget)
        self.admissions = self.controller.pack(specs)
        self.router = TenantRouter(specs)
        self.recorder = recorder
        self.alert_engine = alert_engine
        self.retrain_hooks = dict(retrain_hooks or {})
        self.tenant_hook = tenant_hook
        self._capture_obs()

    def _capture_obs(self) -> None:
        registry = obs.registry()
        self._registry = registry
        self._obs_on = registry.enabled
        self._obs_offered = registry.counter(
            "fleet_offered_packets_total",
            help="packets offered to the fleet gateway",
        )
        self._obs_unrouted = registry.counter(
            "fleet_unrouted_packets_total",
            help="packets no tenant's routing entry claimed",
        )

    def _tenant_counter(self, name: str, tenant: str):
        helps = {
            "fleet_tenant_packets_total": "packets routed per tenant",
            "fleet_shed_packets_total":
                "packets shed because their tenant was not installed",
        }
        return self._registry.counter(
            name, {"tenant": tenant}, help=helps[name]
        )

    # -- tenant lifecycle ----------------------------------------------------

    def remove(self, name: str) -> int:
        """Take a tenant out of service; its remaining traffic sheds.

        Returns the shared-table entries freed.  Callable between runs
        or from a :data:`TenantHook` mid-soak (tenants are served in
        declaration order, so removal affects tenants not yet served).
        """
        if name not in self.specs:
            raise KeyError(f"unknown tenant {name!r}")
        return self.controller.remove(name)

    def install(self, name: str, rules: RuleSet, *, version: Optional[int] = None) -> AdmitResult:
        """Re-admit a tenant with a new rule-set version (between runs).

        The old installation is charged as ``superseded``; the new
        version competes for budget under the same band/quota.
        """
        old = self.specs[name]
        spec = dataclasses.replace(
            old,
            rules=rules,
            version=old.version + 1 if version is None else version,
        )
        self.specs[name] = spec
        result = self.controller.admit(spec)
        self.admissions[name] = result
        return result

    # -- serving -------------------------------------------------------------

    def _policy_action(self) -> str:
        return "allow" if self.config.policy == FAIL_OPEN else "drop"

    def _shed_stream(
        self,
        tenant: Optional[str],
        stream: List[Tuple[int, Packet]],
        merged: Optional[List[Optional[Verdict]]],
    ) -> None:
        """Policy-verdict every packet of an unserved (sub-)stream."""
        action = self._policy_action()
        verdict = Verdict(action, table=None, entry_id=None, tenant=tenant)
        for seq, (index, packet) in enumerate(stream):
            if merged is not None:
                merged[index] = verdict
            if self.recorder is not None:
                self.recorder.add(
                    DecisionRecord(
                        kind=KIND_SHED,
                        seq=seq,
                        timestamp=packet.timestamp,
                        verdict=action,
                        tenant=tenant,
                    )
                )

    def _tenant_config(self, spec: TenantSpec) -> ServeConfig:
        return dataclasses.replace(
            self.config,
            tenants=None,
            fleet_capacity=None,
            table_capacity=max(self.config.table_capacity, spec.cost()),
        )

    def run(self, source: Iterable[Packet]) -> FleetSoakResult:
        """Route, pack-check, and serve the stream; returns the result."""
        wall_start = time.perf_counter()
        record = self.config.record_verdicts
        with self._registry.span("fleet.soak"):
            routed: Dict[str, List[Tuple[int, Packet]]] = {
                name: [] for name in self.order
            }
            unrouted: List[Tuple[int, Packet]] = []
            offered = 0
            route = self.router.route
            for packet in source:
                name = route(packet)
                (routed[name] if name is not None else unrouted).append(
                    (offered, packet)
                )
                offered += 1
            merged: Optional[List[Optional[Verdict]]] = (
                [None] * offered if record else None
            )
            if self._obs_on:
                self._obs_offered.inc(offered)
                self._obs_unrouted.inc(len(unrouted))
            per_tenant: Dict[str, SoakResult] = {}
            shed_tenants: Dict[str, int] = {}
            alerts: List[object] = []
            for name in self.order:
                stream = routed[name]
                if self.controller.is_installed(name):
                    result = self._serve_tenant(name, stream, merged)
                    per_tenant[name] = result
                    alerts.extend(result.alerts)
                else:
                    self._shed_stream(name, stream, merged)
                    shed_tenants[name] = len(stream)
                    if self._obs_on and stream:
                        self._tenant_counter(
                            "fleet_shed_packets_total", name
                        ).inc(len(stream))
                if self.alert_engine is not None and stream:
                    alerts.extend(
                        self.alert_engine.evaluate(stream[-1][1].timestamp)
                    )
                if self.tenant_hook is not None:
                    self.tenant_hook(name, per_tenant.get(name))
            self._shed_stream(None, unrouted, merged)
            if self.alert_engine is not None:
                alerts.extend(self.alert_engine.evaluate(0.0))
                self.alert_engine.finalize()
        wall = time.perf_counter() - wall_start
        processed = sum(r.processed for r in per_tenant.values())
        shed = (
            sum(r.shed for r in per_tenant.values())
            + sum(shed_tenants.values())
            + len(unrouted)
        )
        verdicts: Optional[List[Verdict]] = None
        if record:
            assert merged is not None and all(v is not None for v in merged), (
                "packet lost without a verdict — fleet accounting bug"
            )
            verdicts = list(merged)
        return FleetSoakResult(
            offered=offered,
            processed=processed,
            shed=shed,
            unrouted=len(unrouted),
            wall_seconds=wall,
            per_tenant=per_tenant,
            shed_tenants=shed_tenants,
            admissions=dict(self.admissions),
            accounts={
                name: dataclasses.replace(account)
                for name, account in self.controller.accounts.items()
            },
            verdicts=verdicts,
            alerts=alerts,
        )

    def _serve_tenant(
        self,
        name: str,
        stream: List[Tuple[int, Packet]],
        merged: Optional[List[Optional[Verdict]]],
    ) -> SoakResult:
        """One tenant's sub-stream through its own StreamingGateway.

        Stream time is carried by the packets themselves, so serving
        tenants sequentially is exactly equivalent to any interleaving
        — and identical to serving this tenant alone (see the module
        docstring).
        """
        spec = self.controller.spec(name)
        gateway = StreamingGateway(
            spec.rules,
            self._tenant_config(spec),
            tenant=name,
            recorder=self.recorder,
            retrain_hook=self.retrain_hooks.get(name),
        )
        result = gateway.run(packet for _, packet in stream)
        if self._obs_on and stream:
            self._tenant_counter("fleet_tenant_packets_total", name).inc(
                len(stream)
            )
        if merged is not None and result.verdicts is not None:
            for (index, _), verdict in zip(stream, result.verdicts):
                merged[index] = verdict
        return result


def load_fleet_spec(
    path: Union[str, Path],
    *,
    registry_root: Optional[Union[str, Path]] = None,
) -> Tuple[Optional[int], List[TenantSpec]]:
    """Parse an operator fleet-spec JSON file into tenant specs.

    Format (see docs/OPERATIONS.md)::

        {"capacity": 1024,
         "tenants": [
           {"name": "cameras", "detector": "cameras@2",
            "band": 1, "quota": 512, "src_prefix": "10.1.0.0/16"},
           {"name": "sensors", "rules": "sensors.json"}]}

    Each tenant names its rule set either as a registry reference
    (``detector``, resolved against ``registry_root``) or a rules JSON
    path (``rules``, relative to the spec file).  Returns
    ``(capacity or None, specs in declaration order)``.
    """
    from repro.core.serialize import load_ruleset
    from repro.fleet.registry import DetectorRegistry

    path = Path(path)
    data = json.loads(path.read_text(encoding="utf-8"))
    entries = data.get("tenants")
    if not isinstance(entries, list) or not entries:
        raise ValueError(f"{path}: fleet spec needs a non-empty 'tenants' list")
    registry = (
        DetectorRegistry(registry_root) if registry_root is not None else None
    )
    specs: List[TenantSpec] = []
    for entry in entries:
        name = entry.get("name")
        if not name:
            raise ValueError(f"{path}: every tenant needs a 'name'")
        version = int(entry.get("version", 0))
        if "detector" in entry:
            if registry is None:
                raise ValueError(
                    f"{path}: tenant {name!r} references the detector "
                    "registry; pass --registry-root"
                )
            rules, meta = registry.get(entry["detector"])
            version = version or meta.version
        elif "rules" in entry:
            rules = load_ruleset(path.parent / entry["rules"])
        else:
            raise ValueError(
                f"{path}: tenant {name!r} needs 'detector' or 'rules'"
            )
        specs.append(
            TenantSpec(
                name=name,
                rules=rules,
                band=int(entry.get("band", 0)),
                quota=entry.get("quota"),
                version=version,
                src_prefix=entry.get("src_prefix"),
            )
        )
    capacity = data.get("capacity")
    return (int(capacity) if capacity is not None else None), specs
