"""Tenant-aware packing of rule sets into a bounded shared table budget.

A real gateway fleet serves many device classes from one TCAM: every
tenant (device class, customer, site) brings a trained rule set, the
hardware brings a fixed entry budget, and something has to decide who
fits.  :class:`CapacityController` is that something — a deterministic
admission controller over *ternary entries* (the unit real TCAM is
billed in, via :meth:`repro.core.rules.RuleSet.resource_report`):

* **Priority bands** — higher ``band`` is more important.  An incoming
  tenant may displace installed tenants of *strictly lower* bands when
  the free budget cannot hold it; equal or higher bands are never
  displaced.
* **Per-tenant quotas** — a tenant whose rule set costs more entries
  than its quota is rejected whole.  Rule sets are never truncated:
  serving a prefix of a rule set silently changes its verdicts, so the
  unit of admission (and of eviction) is the complete tenant rule set.
  That is what keeps multi-tenant serving bit-identical per tenant to a
  single-tenant deployment.
* **Deterministic eviction order** — displacement victims are chosen
  lowest band first, then oldest version, then lexicographic name.
  Packing a fleet twice from the same spec list gives the same layout.

Accounting invariant (asserted by the test suite): for every tenant,
``entries_offered == entries_installed + entries_evicted`` at all
times — every offered entry ends up either installed or attributed to
an explicit eviction reason (``quota``, ``capacity``, ``displaced``,
``superseded``, ``removed``).  Nothing is silently lost, mirroring the
gateway's ``offered == processed + shed`` packet invariant.

Telemetry (``fleet_*``, catalogued in docs/OBSERVABILITY.md): installed
entry gauges per tenant, offered/evicted counters by reason, admission
outcomes, and the ``fleet.pack`` span around full-fleet packing.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.rules import RuleSet

__all__ = [
    "AdmitResult",
    "CapacityController",
    "TenantAccount",
    "TenantSpec",
    "EVICT_REASONS",
    "entries_for",
]

#: Every way entries can leave (or never reach) the shared table.
EVICT_REASONS = ("quota", "capacity", "displaced", "superseded", "removed")


def entries_for(rules: RuleSet) -> int:
    """A rule set's cost in shared-table ternary entries."""
    return rules.resource_report()["ternary_entries"]


@dataclasses.dataclass(frozen=True)
class TenantSpec:
    """One tenant's serving contract.

    Attributes:
        name: stable tenant identifier (labels metrics, verdicts and
            decision records).
        rules: the tenant's trained rule set (typically loaded from the
            detector registry).
        band: priority band; higher bands may displace strictly lower
            ones under capacity pressure (default 0).
        quota: per-tenant entry ceiling; ``None`` = bounded only by the
            shared budget.
        version: rule-set version (registry artifact version); older
            versions evict first within a band.
        src_prefix: IPv4 source prefix (``"10.0.0.0/8"``) routing this
            tenant's traffic; ``None`` makes the tenant a catch-all for
            packets no earlier tenant claimed (see
            :class:`repro.fleet.serving.TenantRouter`).
    """

    name: str
    rules: RuleSet
    band: int = 0
    quota: Optional[int] = None
    version: int = 0
    src_prefix: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.quota is not None and self.quota < 1:
            raise ValueError("quota must be >= 1 (or None)")

    def cost(self) -> int:
        """Entry cost of this tenant's rule set."""
        return entries_for(self.rules)


@dataclasses.dataclass
class TenantAccount:
    """Per-tenant entry accounting (the capacity ledger).

    Invariant: ``offered == installed + evicted``.
    """

    name: str
    band: int = 0
    version: int = 0
    offered: int = 0
    installed: int = 0
    evicted: int = 0
    admitted: bool = False
    reason: str = ""

    @property
    def balanced(self) -> bool:
        return self.offered == self.installed + self.evicted


@dataclasses.dataclass(frozen=True)
class AdmitResult:
    """Outcome of one admission attempt.

    Attributes:
        admitted: whether the tenant's rule set is now installed.
        reason: ``"installed"`` on success, otherwise the eviction
            reason charged (``"quota"`` / ``"capacity"``).
        displaced: names of lower-band tenants evicted to make room,
            in eviction order.
    """

    admitted: bool
    reason: str
    displaced: Tuple[str, ...] = ()


class CapacityController:
    """Packs tenants' rule sets into a shared entry budget.

    Args:
        capacity: total shared-table budget in ternary entries.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.accounts: Dict[str, TenantAccount] = {}
        self._installed: Dict[str, TenantSpec] = {}
        self._capture_obs()
        if self._obs_on:
            self._obs_capacity.set(capacity)

    # -- observability -------------------------------------------------------

    def _capture_obs(self) -> None:
        registry = obs.registry()
        self._registry = registry
        self._obs_on = registry.enabled
        self._obs_capacity = registry.gauge(
            "fleet_capacity_entries",
            help="configured shared table budget in ternary entries",
        )
        self._obs_tenants = registry.gauge(
            "fleet_tenants", help="tenants currently installed"
        )
        self._obs_installed: Dict[str, object] = {}
        self._obs_offered: Dict[str, object] = {}
        self._obs_evictions = registry.counter(
            "fleet_evictions_total",
            help="tenant rule sets evicted from the shared table",
        )

    def _obs_installed_gauge(self, name: str):
        if name not in self._obs_installed:
            self._obs_installed[name] = self._registry.gauge(
                "fleet_entries_installed", {"tenant": name},
                help="ternary entries installed per tenant",
            )
        return self._obs_installed[name]

    def _note_offered(self, name: str, cost: int) -> None:
        if not self._obs_on:
            return
        self._registry.counter(
            "fleet_entries_offered_total", {"tenant": name},
            help="ternary entries offered for admission per tenant",
        ).inc(cost)

    def _note_evicted(self, name: str, cost: int, reason: str) -> None:
        if not self._obs_on:
            return
        self._registry.counter(
            "fleet_entries_evicted_total", {"tenant": name, "reason": reason},
            help="ternary entries evicted or refused, by reason",
        ).inc(cost)

    def _note_admission(self, name: str, outcome: str) -> None:
        if not self._obs_on:
            return
        self._registry.counter(
            "fleet_admissions_total", {"tenant": name, "outcome": outcome},
            help="tenant admission attempts by outcome",
        ).inc()

    # -- ledger --------------------------------------------------------------

    @property
    def installed_entries(self) -> int:
        return sum(a.installed for a in self.accounts.values())

    @property
    def free(self) -> int:
        return self.capacity - self.installed_entries

    @property
    def installed_tenants(self) -> Tuple[str, ...]:
        return tuple(self._installed)

    def spec(self, name: str) -> TenantSpec:
        """The installed spec for ``name`` (KeyError if not installed)."""
        return self._installed[name]

    def account(self, name: str) -> TenantAccount:
        return self.accounts[name]

    def is_installed(self, name: str) -> bool:
        return name in self._installed

    def _ledger(self, spec: TenantSpec) -> TenantAccount:
        account = self.accounts.get(spec.name)
        if account is None:
            account = TenantAccount(spec.name)
            self.accounts[spec.name] = account
        account.band = spec.band
        account.version = spec.version
        return account

    def check_invariants(self) -> None:
        """Raise if any tenant's ledger fails offered == installed + evicted."""
        for account in self.accounts.values():
            if not account.balanced:
                raise AssertionError(
                    f"tenant {account.name!r} ledger unbalanced: "
                    f"offered={account.offered} != installed="
                    f"{account.installed} + evicted={account.evicted}"
                )
        if self.installed_entries > self.capacity:
            raise AssertionError(
                f"installed {self.installed_entries} exceeds capacity "
                f"{self.capacity}"
            )

    # -- admission / eviction ------------------------------------------------

    def _evict(self, name: str, reason: str) -> None:
        spec = self._installed.pop(name)
        account = self.accounts[name]
        freed = account.installed
        account.evicted += freed
        account.installed = 0
        account.admitted = False
        account.reason = reason
        if self._obs_on:
            self._note_evicted(name, freed, reason)
            self._obs_evictions.inc()
            self._obs_installed_gauge(name).set(0)
            self._obs_tenants.set(len(self._installed))
        del spec  # the rules object is released with the spec

    def _eviction_order(self) -> List[str]:
        """Installed tenants, lowest band → oldest version → name."""
        return sorted(
            self._installed,
            key=lambda n: (
                self._installed[n].band,
                self._installed[n].version,
                n,
            ),
        )

    def admit(self, spec: TenantSpec) -> AdmitResult:
        """Try to install one tenant, displacing lower bands if needed.

        Re-admitting an installed name is a version upgrade: the old
        installation is charged as ``superseded`` first, so its entries
        are accounted before the new cost is offered.
        """
        if spec.name in self._installed:
            self._evict(spec.name, "superseded")
        cost = spec.cost()
        account = self._ledger(spec)
        account.offered += cost
        self._note_offered(spec.name, cost)
        if spec.quota is not None and cost > spec.quota:
            return self._reject(account, cost, "quota")
        if cost > self.capacity:
            return self._reject(account, cost, "capacity")
        displaced: List[str] = []
        if cost > self.free:
            # Victims: strictly lower bands only, lowest band / oldest
            # version / name order, until the tenant fits.
            plan: List[str] = []
            freed = self.free
            for victim in self._eviction_order():
                if self._installed[victim].band >= spec.band:
                    break
                plan.append(victim)
                freed += self.accounts[victim].installed
                if cost <= freed:
                    break
            if cost > freed:
                return self._reject(account, cost, "capacity")
            for victim in plan:
                self._evict(victim, "displaced")
            displaced = plan
        self._installed[spec.name] = spec
        account.installed = cost
        account.admitted = True
        account.reason = "installed"
        self._note_admission(spec.name, "installed")
        if self._obs_on:
            self._obs_installed_gauge(spec.name).set(cost)
            self._obs_tenants.set(len(self._installed))
        return AdmitResult(True, "installed", tuple(displaced))

    def _reject(self, account: TenantAccount, cost: int, reason: str) -> AdmitResult:
        account.evicted += cost
        account.admitted = False
        account.reason = reason
        self._note_evicted(account.name, cost, reason)
        self._note_admission(account.name, f"rejected_{reason}")
        return AdmitResult(False, reason)

    def remove(self, name: str) -> int:
        """Operator removal; returns the entries freed (0 if not installed)."""
        if name not in self._installed:
            return 0
        freed = self.accounts[name].installed
        self._evict(name, "removed")
        return freed

    def pack(self, specs: Sequence[TenantSpec]) -> Dict[str, AdmitResult]:
        """Admit a whole fleet in declaration order (deterministic).

        Declaration order is the operator-visible contract: earlier
        tenants claim budget first, later higher-band tenants can still
        displace them.  The same spec list always packs the same way.
        """
        names = [s.name for s in specs]
        if len(names) != len(set(names)):
            raise ValueError("tenant names must be unique")
        results: Dict[str, AdmitResult] = {}
        with self._registry.span("fleet.pack"):
            for spec in specs:
                results[spec.name] = self.admit(spec)
        return results
