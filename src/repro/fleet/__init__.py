"""Multi-tenant fleet layer: detector registry, capacity packing, serving.

See docs/OPERATIONS.md for the operator workflow and
docs/ARCHITECTURE.md ("Fleet & multi-tenancy") for the design.
"""

from repro.fleet.capacity import (
    EVICT_REASONS,
    AdmitResult,
    CapacityController,
    TenantAccount,
    TenantSpec,
    entries_for,
)
from repro.fleet.registry import ArtifactMeta, DetectorRegistry, RegistryError
from repro.fleet.serving import (
    FleetGateway,
    FleetSoakResult,
    TenantRouter,
    load_fleet_spec,
)

__all__ = [
    "AdmitResult",
    "ArtifactMeta",
    "CapacityController",
    "DetectorRegistry",
    "EVICT_REASONS",
    "FleetGateway",
    "FleetSoakResult",
    "RegistryError",
    "TenantAccount",
    "TenantRouter",
    "TenantSpec",
    "entries_for",
    "load_fleet_spec",
]
