"""Decision-tree baseline: CART trained directly on ground truth.

Unlike the two-stage pipeline (which distils a tree from the compact DNN on
*selected* fields), this baseline sees every byte feature — the standard
"train a tree on everything" comparator.
"""

from __future__ import annotations

import numpy as np

from repro.core.distill import DecisionTree

__all__ = ["DecisionTreeBaseline"]


class DecisionTreeBaseline:
    """CART over the full feature matrix.

    Args:
        max_depth / min_samples_leaf: CART knobs.
    """

    name = "decision-tree"

    def __init__(self, *, max_depth: int = 10, min_samples_leaf: int = 5):
        self.tree = DecisionTree(
            max_depth=max_depth, min_samples_leaf=min_samples_leaf
        )

    @staticmethod
    def _to_bytes(x: np.ndarray) -> np.ndarray:
        """Accept scaled [0,1] floats or raw byte values."""
        x = np.asarray(x)
        if x.size and x.max() <= 1.0:
            return np.round(x * 255.0).astype(np.int64)
        return x.astype(np.int64)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeBaseline":
        self.tree.fit(self._to_bytes(x), np.asarray(y, dtype=np.int64))
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.tree.predict(self._to_bytes(x))

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return self.tree.predict_proba(self._to_bytes(x))

    def fields_used(self) -> int:
        """Distinct byte positions the grown tree actually tests."""
        return len(self.tree.feature_usage())
