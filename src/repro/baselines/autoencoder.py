"""Unsupervised anomaly-detection baseline: a reconstruction autoencoder.

Trains only on *benign* packets (no attack labels needed — the setting
where labelled attack data is unavailable) and scores packets by
reconstruction error; anything far from the benign byte manifold is
flagged.  The comparison axis against the paper's supervised two-stage
method: no labels required, but a threshold must be calibrated and the
scores cannot be compiled into match-action rules.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.layers import Dense, ReLU, Sigmoid
from repro.nn.losses import MeanSquaredError
from repro.nn.model import Sequential
from repro.nn.optim import Adam

__all__ = ["AutoencoderDetector"]


class AutoencoderDetector:
    """Benign-only autoencoder with percentile thresholding.

    Args:
        n_features: input width.
        bottleneck: latent dimensionality.
        hidden: encoder hidden width (mirrored in the decoder).
        threshold_percentile: benign-error percentile used as the decision
            threshold (e.g. 99 → ~1% benign false-positive budget).
        epochs / batch_size / lr / seed: training knobs.
    """

    name = "autoencoder"

    def __init__(
        self,
        n_features: int,
        *,
        bottleneck: int = 8,
        hidden: int = 48,
        threshold_percentile: float = 99.0,
        epochs: int = 40,
        batch_size: int = 64,
        lr: float = 2e-3,
        seed: int = 0,
    ):
        if not 0 < threshold_percentile <= 100:
            raise ValueError("threshold_percentile must be in (0, 100]")
        rng = np.random.default_rng(seed)
        self.model = Sequential(
            [
                Dense(n_features, hidden, rng=rng),
                ReLU(),
                Dense(hidden, bottleneck, rng=rng),
                ReLU(),
                Dense(bottleneck, hidden, rng=rng),
                ReLU(),
                Dense(hidden, n_features, rng=rng),
                Sigmoid(),  # inputs are scaled bytes in [0, 1]
            ]
        )
        self.threshold_percentile = threshold_percentile
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self._rng = rng
        self.threshold: Optional[float] = None

    def fit(self, x_benign: np.ndarray) -> "AutoencoderDetector":
        """Train on benign-only features and calibrate the threshold."""
        x_benign = np.asarray(x_benign, dtype=np.float64)
        if len(x_benign) < 10:
            raise ValueError("need at least 10 benign samples")
        self.model.fit(
            x_benign,
            x_benign,
            epochs=self.epochs,
            batch_size=self.batch_size,
            loss=MeanSquaredError(),
            optimizer=Adam(self.model.params(), lr=self.lr),
            rng=self._rng,
        )
        errors = self.scores(x_benign)
        self.threshold = float(np.percentile(errors, self.threshold_percentile))
        return self

    def scores(self, x: np.ndarray) -> np.ndarray:
        """Per-row mean squared reconstruction error."""
        x = np.asarray(x, dtype=np.float64)
        reconstruction = self.model.forward(x, training=False)
        return ((reconstruction - x) ** 2).mean(axis=1)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """1 = anomalous (error above the calibrated threshold)."""
        if self.threshold is None:
            raise RuntimeError("detector is not fitted")
        return (self.scores(x) > self.threshold).astype(np.int64)
