"""Flow-statistics baseline: the classic flow-level IDS design.

Aggregates packets into flows, computes per-flow statistical features
(counts, sizes, timing), and classifies *flows* with a CART tree.  Two
structural differences from the paper's per-packet byte approach that the
E15 benchmark quantifies:

* **detection latency** — a flow feature vector only exists after the flow
  has been observed (here: after ``decision_packets`` packets or flow
  end), so early packets of an attack flow pass unjudged;
* **state cost** — the gateway must keep per-flow state, which spoofed
  floods blow up deliberately (one "flow" per packet).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.distill import DecisionTree
from repro.net.flow import Flow, assemble_flows
from repro.net.packet import Packet

__all__ = ["FlowStatsDetector", "flow_features", "FLOW_FEATURE_NAMES"]

FLOW_FEATURE_NAMES = [
    "packet_count",
    "mean_size",
    "std_size",
    "duration_ds",
    "mean_gap_ms",
    "dst_port_class",
    "protocol",
]


def _port_class(port: int) -> int:
    """Coarse destination-port bucket (well-known / registered / dynamic)."""
    if port == 0:
        return 0
    if port < 1024:
        return 1
    if port < 49152:
        return 2
    return 3


def flow_features(flow: Flow) -> np.ndarray:
    """Fixed-length feature vector for one flow (values clipped to bytes).

    Features are quantised into 0..255 so the same CART/rule machinery can
    consume them; the quantisation granularity is part of what the
    comparison is about (flow features are coarse by construction).
    """
    sizes = np.array([len(p.data) for p in flow.packets], dtype=float)
    times = np.array([p.timestamp for p in flow.packets])
    gaps = np.diff(times) if len(times) > 1 else np.array([0.0])
    return np.array(
        [
            min(flow.packet_count, 255),
            min(int(sizes.mean()), 255),
            min(int(sizes.std()), 255),
            min(int(flow.duration * 10), 255),          # deciseconds
            min(int(abs(gaps.mean()) * 1000), 255),     # milliseconds
            _port_class(max(flow.key.src_port, flow.key.dst_port)),
            min(flow.key.protocol, 255),
        ],
        dtype=np.int64,
    )


@dataclasses.dataclass
class FlowStatsResult:
    """Per-packet predictions plus latency bookkeeping."""

    predictions: np.ndarray
    #: per attack packet: how many packets of its flow had already passed
    #: before the flow could be judged (the detection latency in packets).
    attack_latency_packets: float
    unkeyed_packets: int
    flow_count: int


class FlowStatsDetector:
    """Flow-level CART over statistical features.

    Note the data-efficiency weakness relative to per-packet learning: the
    training set size is the number of *flows*, not packets — a
    single-source attack contributes one flow sample no matter how many
    packets it sends, so sparse-flow traces need ``min_samples_leaf=1``
    (at an overfitting risk) to be learnable at all.

    Args:
        decision_packets: packets observed per flow before it is judged
            (smaller = earlier but noisier decisions).
        idle_timeout: flow assembly timeout in seconds.
        max_depth: CART depth.
        min_samples_leaf: CART leaf floor (see the note above).
        stack: flow-key parser family.
    """

    name = "flow-stats"

    def __init__(
        self,
        *,
        decision_packets: int = 5,
        idle_timeout: float = 60.0,
        max_depth: int = 8,
        min_samples_leaf: int = 3,
        stack: str = "ethernet",
    ):
        if decision_packets < 1:
            raise ValueError("decision_packets must be >= 1")
        self.decision_packets = decision_packets
        self.idle_timeout = idle_timeout
        self.stack = stack
        self.tree = DecisionTree(
            max_depth=max_depth, min_samples_leaf=min_samples_leaf
        )
        self._fitted = False

    def _flows(self, packets: Sequence[Packet]) -> List[Flow]:
        ordered = sorted(packets, key=lambda p: p.timestamp)
        return assemble_flows(
            ordered, idle_timeout=self.idle_timeout, stack=self.stack
        )

    def _prefix(self, flow: Flow) -> Flow:
        """The flow as it looks at decision time (first N packets)."""
        cut = min(self.decision_packets, flow.packet_count)
        return Flow(flow.key, flow.packets[:cut])

    def fit_packets(self, packets: Sequence[Packet]) -> "FlowStatsDetector":
        """Assemble training flows and fit the flow classifier.

        Trains on the *prefix* features that will be available at decision
        time, so training and serving see the same feature distribution.
        """
        flows = self._flows(packets)
        if not flows:
            raise ValueError("no flows could be assembled from training data")
        x = np.stack([flow_features(self._prefix(flow)) for flow in flows])
        y = np.array([1 if flow.is_attack else 0 for flow in flows])
        if y.max() == y.min():
            raise ValueError("training flows are single-class")
        self.tree.fit(x, y)
        self._fitted = True
        return self

    def predict_packets(self, packets: Sequence[Packet]) -> FlowStatsResult:
        """Per-packet verdicts with flow-level decision latency.

        A flow's verdict is available only once ``decision_packets`` of its
        packets have been seen; earlier packets are allowed (prediction 0).
        Unkeyed (non-IP) packets are always allowed — the universality
        failure mode.
        """
        if not self._fitted:
            raise RuntimeError("detector is not fitted")
        index_of = {id(p): i for i, p in enumerate(packets)}
        predictions = np.zeros(len(packets), dtype=np.int64)
        latencies: List[int] = []
        unkeyed = len(packets)
        flows = self._flows(packets)
        for flow in flows:
            unkeyed -= flow.packet_count
            decision_at = min(self.decision_packets, flow.packet_count)
            # Judge on the prefix actually available at decision time.
            verdict = int(
                self.tree.predict(flow_features(self._prefix(flow))[None, :])[0]
            )
            for position, packet in enumerate(flow.packets):
                if verdict and position >= decision_at - 1:
                    predictions[index_of[id(packet)]] = 1
            if flow.is_attack:
                latencies.append(decision_at - 1)
        return FlowStatsResult(
            predictions=predictions,
            attack_latency_packets=float(np.mean(latencies)) if latencies else 0.0,
            unkeyed_packets=unkeyed,
            flow_count=len(flows),
        )
