"""k-nearest-neighbours baseline (brute force, chunked distances)."""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["KNearestNeighbors"]


class KNearestNeighbors:
    """Euclidean k-NN with majority vote.

    Args:
        k: neighbourhood size.
        chunk: query rows per distance block (bounds memory at
            ``chunk × n_train`` floats).
    """

    name = "knn"

    def __init__(self, *, k: int = 5, chunk: int = 256):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.chunk = chunk
        self._x: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._n_classes = 0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNearestNeighbors":
        self._x = np.asarray(x, dtype=np.float64)
        self._y = np.asarray(y, dtype=np.int64)
        if len(self._x) < self.k:
            raise ValueError(f"need at least k={self.k} training points")
        self._n_classes = int(self._y.max()) + 1
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._x is None or self._y is None:
            raise RuntimeError("kNN is not fitted")
        x = np.asarray(x, dtype=np.float64)
        out = np.empty(len(x), dtype=np.int64)
        train_sq = (self._x**2).sum(axis=1)
        for start in range(0, len(x), self.chunk):
            block = x[start : start + self.chunk]
            # squared distances via the expansion ||a-b||² = ||a||²+||b||²-2ab
            d2 = (
                (block**2).sum(axis=1)[:, None]
                + train_sq[None, :]
                - 2.0 * block @ self._x.T
            )
            neighbours = np.argpartition(d2, self.k - 1, axis=1)[:, : self.k]
            for row, idx in enumerate(neighbours):
                votes = np.bincount(self._y[idx], minlength=self._n_classes)
                out[start + row] = int(votes.argmax())
        return out
