"""Linear SVM baseline: one-vs-rest hinge loss trained with SGD."""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["LinearSVM"]


class LinearSVM:
    """L2-regularised linear SVM (Pegasos-style SGD), one-vs-rest.

    Args:
        c: inverse regularisation strength (larger = less regularised).
        epochs: passes over the data.
        batch_size: SGD minibatch size.
        lr: base learning rate (decays as 1/sqrt(t)).
        seed: shuffle/init seed.
    """

    name = "linear-svm"

    def __init__(
        self,
        *,
        c: float = 1.0,
        epochs: int = 30,
        batch_size: int = 64,
        lr: float = 0.05,
        seed: int = 0,
    ):
        if c <= 0:
            raise ValueError("c must be positive")
        self.c = c
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self.weights: Optional[np.ndarray] = None  # (classes, features)
        self.bias: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearSVM":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        # Centre features: with all-positive inputs (byte values) the
        # decision boundary otherwise hinges entirely on the slowly-learnt
        # bias term.
        self._mean = x.mean(axis=0)
        x = x - self._mean
        rng = np.random.default_rng(self.seed)
        n, d = x.shape
        classes = int(y.max()) + 1
        self.weights = np.zeros((classes, d))
        self.bias = np.zeros(classes)
        lam = 1.0 / (self.c * n)
        step = 0
        for __ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                xb = x[idx]
                step += 1
                lr_t = self.lr / np.sqrt(step)
                for cls in range(classes):
                    target = np.where(y[idx] == cls, 1.0, -1.0)
                    margin = target * (xb @ self.weights[cls] + self.bias[cls])
                    active = margin < 1.0
                    grad_w = lam * self.weights[cls] - (
                        (target[active, None] * xb[active]).sum(axis=0) / len(idx)
                    )
                    grad_b = -target[active].sum() / len(idx)
                    self.weights[cls] -= lr_t * grad_w
                    self.bias[cls] -= lr_t * grad_b
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self.weights is None or self.bias is None or self._mean is None:
            raise RuntimeError("SVM is not fitted")
        centred = np.asarray(x, dtype=np.float64) - self._mean
        return centred @ self.weights.T + self.bias

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.decision_function(x).argmax(axis=1)
