"""1-D CNN baseline over raw packet bytes.

The deep-learning comparator several related systems use: small
convolutions learn local byte motifs (protocol magic numbers, field
patterns) position-*locally*, then a global pooling head classifies.
Like the full MLP it has no field budget and cannot be compiled to rules.
"""

from __future__ import annotations

import numpy as np

from repro.nn.conv import Conv1D, GlobalMaxPool1D
from repro.nn.layers import Dense, ReLU
from repro.nn.model import Sequential
from repro.nn.optim import Adam

__all__ = ["ByteCnn"]


class ByteCnn:
    """Conv → ReLU → Conv → ReLU → global-max-pool → Dense classifier.

    Args:
        n_bytes: input length (single input channel: the byte values).
        n_classes: output classes.
        channels: feature maps per conv layer.
        kernel: convolution width.
        epochs / batch_size / lr / seed: training knobs.
    """

    name = "byte-cnn"

    def __init__(
        self,
        n_bytes: int,
        n_classes: int = 2,
        *,
        channels: int = 16,
        kernel: int = 5,
        epochs: int = 30,
        batch_size: int = 64,
        lr: float = 2e-3,
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        first = Conv1D(n_bytes, 1, channels, kernel, rng=rng)
        second = Conv1D(first.out_length, channels, channels, kernel, rng=rng)
        self.model = Sequential(
            [
                first,
                ReLU(),
                second,
                ReLU(),
                GlobalMaxPool1D(second.out_length, channels),
                Dense(channels, n_classes, rng=rng),
            ]
        )
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self._rng = rng

    def fit(self, x: np.ndarray, y: np.ndarray) -> "ByteCnn":
        self.model.fit(
            np.asarray(x, dtype=np.float64),
            np.asarray(y, dtype=np.int64),
            epochs=self.epochs,
            batch_size=self.batch_size,
            optimizer=Adam(self.model.params(), lr=self.lr),
            rng=self._rng,
        )
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.model.predict(np.asarray(x, dtype=np.float64))

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return self.model.predict_proba(np.asarray(x, dtype=np.float64))
