"""Heavy-hitter (rate-based) detection baseline.

The classic in-switch defense *without* learning: count packets per source
in a sliding window and flag sources above a rate threshold.  Catches
volumetric floods; structurally blind to low-rate attacks (telnet brute
force, slow scans) and to anything whose per-source rate resembles benign
traffic — the gap the paper's learned rules close.  Compared in E11.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.dataplane.stateful import dest_key_inet, source_key_inet
from repro.net.packet import Packet
from repro.net.sketch import CountMinSketch

__all__ = ["HeavyHitterDetector"]


class HeavyHitterDetector:
    """Per-key rate thresholding over fixed windows.

    Args:
        threshold: packets per window per key to flag as attack.
        window: window length in seconds.
        key: ``"src"`` (per-source — evaded by spoofing), ``"dst"``
            (per-victim — flags benign traffic to the victim too), or a
            custom ``key_fn``.
        key_fn: packet → key tuple, overrides ``key``.
    """

    name = "heavy-hitter"

    def __init__(
        self,
        *,
        threshold: int = 50,
        window: float = 1.0,
        key: str = "src",
        key_fn: Optional[Callable[[Packet], Tuple[int, ...]]] = None,
    ):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if window <= 0:
            raise ValueError("window must be positive")
        if key not in ("src", "dst"):
            raise ValueError(f"unknown key {key!r}")
        self.threshold = threshold
        self.window = window
        self.key_fn = key_fn or (source_key_inet if key == "src" else dest_key_inet)

    def predict_packets(self, packets: Sequence[Packet]) -> np.ndarray:
        """1 = flagged (key over rate), 0 = passed.

        Packets are processed in timestamp order (rate counting is only
        meaningful on the wire-order stream) and the verdicts are mapped
        back to the input order, so shuffled evaluation splits work.
        """
        order = sorted(range(len(packets)), key=lambda i: packets[i].timestamp)
        sketch = CountMinSketch(width=2048, depth=3)
        epoch = None
        out = np.zeros(len(packets), dtype=np.int64)
        for index in order:
            packet = packets[index]
            current = int(packet.timestamp / self.window)
            if current != epoch:
                sketch.clear()
                epoch = current
            count = sketch.add(self.key_fn(packet))
            out[index] = 1 if count > self.threshold else 0
        return out
