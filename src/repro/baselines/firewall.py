"""Classic 5-tuple firewall baseline.

The pre-SDN/pre-learning comparator: during "training" it records the exact
5-tuples of flows labelled as attacks and installs one exact-match blocklist
entry per tuple.  Two structural weaknesses the evaluation surfaces:

* **universality** — it needs an IP parser, so it abstains on non-IP
  stacks (Zigbee-like, BLE-like) and on unparseable packets;
* **efficiency** — spoofed-source floods generate one entry per spoofed
  tuple, exploding the table (E5), and unseen tuples are never blocked.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.net.flow import FlowKey, key_for_packet
from repro.net.packet import Packet
from repro.net.protocols import inet

__all__ = ["FiveTupleFirewall"]


class FiveTupleFirewall:
    """Exact-match blocklist over normalised 5-tuples (or source addresses).

    Unlike the ML baselines this consumes :class:`Packet` objects, since it
    must parse protocol headers — which is exactly its limitation.

    Args:
        stack: parser family (``"ethernet"``, ``"zigbee"``, ``"ble"``).
        granularity: ``"exact"`` blocklists full 5-tuples (dynamic attacks
            with random ports then evade it entirely); ``"src"`` blocklists
            source addresses (catches floods from fixed sources but also
            blocks every benign packet of a compromised device).
    """

    name = "5-tuple-firewall"

    def __init__(self, *, stack: str = "ethernet", granularity: str = "exact"):
        if granularity not in ("exact", "src"):
            raise ValueError(f"unknown granularity {granularity!r}")
        self.stack = stack
        self.granularity = granularity
        self._blocked: Set[object] = set()
        self.unparseable_seen = 0

    def _key(self, packet: Packet) -> Optional[object]:
        if self.granularity == "src":
            return self._source_of(packet)
        return key_for_packet(packet, self.stack)

    def _source_of(self, packet: Packet) -> Optional[str]:
        if self.stack == "zigbee":
            if len(packet.data) < 9:
                return None
            return str(int.from_bytes(packet.data[7:9], "big"))
        if self.stack == "ble":
            if len(packet.data) < 6:
                return None
            return str(int.from_bytes(packet.data[2:6], "big"))
        try:
            frame = inet.parse_ethernet_stack(packet.data)
        except ValueError:
            return None
        if frame.ipv4 is None:
            return None
        return ".".join(str(b) for b in frame.ipv4["src_addr"].to_bytes(4, "big"))

    def fit_packets(self, packets: Sequence[Packet]) -> "FiveTupleFirewall":
        """Record the keys of every attack-labelled training packet."""
        self._blocked.clear()
        self.unparseable_seen = 0
        for packet in packets:
            key = self._key(packet)
            if key is None:
                self.unparseable_seen += 1
                continue
            if packet.label.is_attack:
                self._blocked.add(key)
        return self

    @property
    def table_entries(self) -> int:
        return len(self._blocked)

    def predict_packet(self, packet: Packet) -> Optional[int]:
        """1 = drop, 0 = allow, None = cannot parse (structural abstain)."""
        key = self._key(packet)
        if key is None:
            return None
        return 1 if key in self._blocked else 0

    def predict_packets(self, packets: Sequence[Packet]) -> np.ndarray:
        """Vectorised predictions with abstains mapped to allow (0).

        A firewall that cannot parse a packet forwards it — the fail-open
        behaviour that makes it useless on non-IP attack traffic.
        """
        out = np.zeros(len(packets), dtype=np.int64)
        for i, packet in enumerate(packets):
            decision = self.predict_packet(packet)
            out[i] = decision if decision is not None else 0
        return out

    def coverage(self, packets: Sequence[Packet]) -> float:
        """Fraction of packets the firewall can parse at all."""
        if not packets:
            return 0.0
        parsed = sum(
            1 for p in packets if key_for_packet(p, self.stack) is not None
        )
        return parsed / len(packets)
