"""Full-packet MLP baseline: a DNN over every byte feature.

The accuracy ceiling the two-stage method is measured against — it sees all
``n_bytes`` features with no field budget, so it cannot be implemented as
switch flow rules (that is the efficiency trade-off the paper quantifies).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.layers import Dense, Dropout, ReLU
from repro.nn.model import Sequential
from repro.nn.optim import Adam

__all__ = ["FullPacketMLP"]


class FullPacketMLP:
    """MLP over the full feature matrix.

    Args:
        n_features: input width.
        n_classes: output classes.
        hidden: hidden widths.
        dropout: dropout rate after each hidden layer.
        epochs / batch_size / lr / seed: training knobs.
    """

    name = "full-mlp"

    def __init__(
        self,
        n_features: int,
        n_classes: int = 2,
        *,
        hidden: Tuple[int, ...] = (128, 64),
        dropout: float = 0.1,
        epochs: int = 40,
        batch_size: int = 64,
        lr: float = 2e-3,
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        layers = []
        width = n_features
        for h in hidden:
            layers.append(Dense(width, h, rng=rng))
            layers.append(ReLU())
            if dropout:
                layers.append(Dropout(dropout, rng=rng))
            width = h
        layers.append(Dense(width, n_classes, rng=rng))
        self.model = Sequential(layers)
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self._rng = rng

    def fit(self, x: np.ndarray, y: np.ndarray) -> "FullPacketMLP":
        self.model.fit(
            np.asarray(x, dtype=np.float64),
            np.asarray(y, dtype=np.int64),
            epochs=self.epochs,
            batch_size=self.batch_size,
            optimizer=Adam(self.model.params(), lr=self.lr),
            rng=self._rng,
        )
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.model.predict(np.asarray(x, dtype=np.float64))

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return self.model.predict_proba(np.asarray(x, dtype=np.float64))
