"""State-of-the-art comparators, all implemented from scratch.

Machine-learning baselines share the ``fit(x, y)`` / ``predict(x)``
interface and consume the *full* byte-feature matrix (they have no field
budget — that is the point of the comparison).  The classic 5-tuple
firewall baseline consumes parsed packets instead and fails structurally on
non-IP stacks, which is the paper's universality argument.
"""

from repro.baselines.autoencoder import AutoencoderDetector
from repro.baselines.cnn import ByteCnn
from repro.baselines.firewall import FiveTupleFirewall
from repro.baselines.flowstats import FlowStatsDetector
from repro.baselines.forest import RandomForest
from repro.baselines.fullnn import FullPacketMLP
from repro.baselines.heavyhitter import HeavyHitterDetector
from repro.baselines.knn import KNearestNeighbors
from repro.baselines.svm import LinearSVM
from repro.baselines.tree import DecisionTreeBaseline

__all__ = [
    "DecisionTreeBaseline",
    "RandomForest",
    "LinearSVM",
    "KNearestNeighbors",
    "FullPacketMLP",
    "FiveTupleFirewall",
    "HeavyHitterDetector",
    "AutoencoderDetector",
    "ByteCnn",
    "FlowStatsDetector",
]
