"""Random-forest baseline: bagged CARTs with feature subsampling."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.distill import DecisionTree

__all__ = ["RandomForest"]


class RandomForest:
    """Bootstrap-aggregated CART ensemble.

    Args:
        n_trees: ensemble size.
        max_depth / min_samples_leaf: per-tree CART knobs.
        max_features: features visible to each tree (None = sqrt(d)).
        seed: bootstrap/subsample seed.
    """

    name = "random-forest"

    def __init__(
        self,
        *,
        n_trees: int = 15,
        max_depth: int = 10,
        min_samples_leaf: int = 3,
        max_features: Optional[int] = None,
        seed: int = 0,
    ):
        if n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._trees: List[DecisionTree] = []
        self._features: List[np.ndarray] = []
        self._n_classes = 0

    @staticmethod
    def _to_bytes(x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.size and x.max() <= 1.0:
            return np.round(x * 255.0).astype(np.int64)
        return x.astype(np.int64)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForest":
        x = self._to_bytes(x)
        y = np.asarray(y, dtype=np.int64)
        rng = np.random.default_rng(self.seed)
        n, d = x.shape
        self._n_classes = int(y.max()) + 1
        k = self.max_features or max(1, int(np.sqrt(d)))
        self._trees, self._features = [], []
        for __ in range(self.n_trees):
            rows = rng.integers(0, n, size=n)  # bootstrap
            cols = rng.choice(d, size=min(k, d), replace=False)
            cols.sort()
            tree = DecisionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
            )
            tree.fit(x[np.ix_(rows, cols)], y[rows])
            self._trees.append(tree)
            self._features.append(cols)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("forest is not fitted")
        x = self._to_bytes(x)
        votes = np.zeros((len(x), self._n_classes))
        for tree, cols in zip(self._trees, self._features):
            predictions = tree.predict(x[:, cols])
            # A tree trained on a bootstrap may have seen fewer classes.
            votes[np.arange(len(x)), np.clip(predictions, 0, self._n_classes - 1)] += 1
        return votes / self.n_trees

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.predict_proba(x).argmax(axis=1)
