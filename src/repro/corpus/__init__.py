"""On-disk trace corpora: synthesis, streaming replay, endurance soaks.

The corpus subsystem turns the in-memory benchmark traces into
multi-million-packet on-disk workloads with bounded-memory endpoints on
both sides:

* :func:`build_corpus` synthesizes mixed attack/benign corpora to
  chunked pcap files (optionally gzip) plus a deterministic
  ``manifest.json`` — chunk index, per-class counts, sha256 content
  digests — streaming one chunk at a time;
* :class:`CorpusSource` replays a corpus through the serving layer by
  chaining the record-at-a-time pcap reader across chunks, verifying
  digests in flight;
* :func:`replay_corpus` + :class:`TimedSwapHook` make up the endurance
  harness behind ``repro corpus replay`` and E20 — sustained
  throughput, shed accounting, RSS ceiling, and drift→retrain→swap
  latency over long runs.
"""

from repro.corpus.build import (
    ChunkMeta,
    CorpusError,
    CorpusManifest,
    CorpusSpec,
    MANIFEST_FORMAT,
    MANIFEST_NAME,
    build_corpus,
    family_registry,
    load_manifest,
)
from repro.corpus.replay import (
    ReplayReport,
    TimedSwapHook,
    replay_corpus,
    rss_bytes,
)
from repro.corpus.source import CorpusSource

__all__ = [
    "ChunkMeta",
    "CorpusError",
    "CorpusManifest",
    "CorpusSpec",
    "CorpusSource",
    "MANIFEST_FORMAT",
    "MANIFEST_NAME",
    "ReplayReport",
    "TimedSwapHook",
    "build_corpus",
    "family_registry",
    "load_manifest",
    "replay_corpus",
    "rss_bytes",
]
