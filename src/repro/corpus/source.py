"""Bounded-memory corpus replay: chain chunks, verify digests in flight.

:class:`CorpusSource` is a gateway source (an iterable of packets with
non-decreasing timestamps) over an on-disk corpus.  It chains the
block-buffered pcap reader across chunk files, so memory is bounded by
one read block (64 KB) plus one record regardless of corpus size, and
— unless told not to — re-computes each chunk's sha256 over the
uncompressed byte stream *as it reads*, raising
:class:`~repro.corpus.build.CorpusError` the moment a chunk disagrees
with its manifest digest.  Verification is therefore free of a second
read pass and adds one hash update per block, not per record.

Re-stamping to a fresh offered load wraps the whole chained stream in
:func:`repro.serve.retime`, which is itself a streaming generator — a
chunk is never materialised to be re-timed.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Callable, Iterator, Optional, Union

from repro import obs
from repro.corpus.build import ChunkMeta, CorpusError, CorpusManifest, load_manifest
from repro.net.packet import Packet
from repro.net.pcap import iter_pcap_buffered, open_pcap_stream
from repro.serve.sources import retime

__all__ = ["CorpusSource"]


class _HashingReader:
    """Read-through wrapper computing sha256 of everything read."""

    def __init__(self, handle):
        self._handle = handle
        self.sha = hashlib.sha256()

    def read(self, size: int = -1) -> bytes:
        data = self._handle.read(size)
        self.sha.update(data)
        return data


class CorpusSource:
    """Stream an on-disk corpus through the gateway in bounded memory.

    Args:
        root: corpus directory (or its ``manifest.json`` path).
        rate: when set, ignore corpus timestamps and re-time the stream
            to this offered load (pkts/s) via :func:`repro.serve.retime`;
            ``None`` keeps the corpus's own arrival clock.
        burstiness: burst factor for re-timing.
        seed: RNG seed for the re-timing arrival process.
        verify: re-compute each chunk's sha256 while streaming and raise
            :class:`CorpusError` on mismatch (also checks record
            counts).  Costs one hash update per read; on by default.
        loop: replay the corpus this many times end-to-end (requires
            ``rate``, so stream time keeps advancing).
        on_chunk: optional ``(chunk_index, meta)`` callback fired after
            each chunk is fully streamed — the endurance harness samples
            RSS here, at chunk granularity, off the per-packet hot path.
    """

    def __init__(
        self,
        root: Union[str, Path, CorpusManifest],
        *,
        rate: Optional[float] = None,
        burstiness: float = 1.0,
        seed: int = 0,
        verify: bool = True,
        loop: int = 1,
        on_chunk: Optional[Callable[[int, ChunkMeta], None]] = None,
    ):
        if loop < 1:
            raise CorpusError("loop must be >= 1")
        if loop > 1 and rate is None:
            raise CorpusError("looping a corpus requires rate re-timing")
        if isinstance(root, CorpusManifest):
            self.manifest = root
        else:
            self.manifest = load_manifest(root)
        if not self.manifest.chunks:
            raise CorpusError("corpus manifest lists no chunks")
        self._rate = rate
        self._burstiness = burstiness
        self._seed = seed
        self._verify = verify
        self._loop = loop
        self._on_chunk = on_chunk
        #: Chunks whose digests verified during the latest iteration.
        self.chunks_verified = 0

    def __len__(self) -> int:
        return self.manifest.packets * self._loop

    def _stream_chunk(self, meta: ChunkMeta, counters) -> Iterator[Packet]:
        path = self.manifest.chunk_path(meta)
        with open(path, "rb") as raw:
            if not self._verify:
                yield from iter_pcap_buffered(raw)
                return
            # hash sits between the gzip layer and the parser, so the
            # digest always covers the *uncompressed* chunk bytes; the
            # block-buffered parser above it hashes a few large reads
            # per chunk instead of two tiny ones per record
            reader = _HashingReader(open_pcap_stream(raw))
            yield from iter_pcap_buffered(reader)
            # the parser consumed the stream to EOF, so the digest covers
            # the complete uncompressed chunk content — record headers
            # included, which is why no separate record count is kept
            digest = reader.sha.hexdigest()
            if digest != meta.digest:
                counters["failures"].inc()
                raise CorpusError(
                    f"digest mismatch in {meta.file}: "
                    f"manifest {meta.digest[:12]}…, stream {digest[:12]}…"
                )
            self.chunks_verified += 1

    def _raw(self) -> Iterator[Packet]:
        registry = obs.registry()
        counters = {
            "chunks": registry.counter(
                "corpus_replay_chunks_total",
                help="Corpus chunks fully streamed through a source",
            ),
            "packets": registry.counter(
                "corpus_replay_packets_total",
                help="Packets replayed from on-disk corpora",
            ),
            "failures": registry.counter(
                "corpus_digest_failures_total",
                help="Corpus chunks whose content digest did not verify",
            ),
        }
        self.chunks_verified = 0
        for __ in range(self._loop):
            for index, meta in enumerate(self.manifest.chunks):
                yield from self._stream_chunk(meta, counters)
                counters["chunks"].inc()
                counters["packets"].inc(meta.packets)
                if self._on_chunk is not None:
                    self._on_chunk(index, meta)

    def __iter__(self) -> Iterator[Packet]:
        if self._rate is None:
            return self._raw()
        return retime(
            self._raw(),
            rate=self._rate,
            burstiness=self._burstiness,
            seed=self._seed,
        )
