"""Endurance replay: corpus → gateway soaks with memory + swap telemetry.

The harness behind ``repro corpus replay``, the ``corpus_replay`` bench
phase, and E20.  It wires a :class:`~repro.corpus.source.CorpusSource`
into a :class:`~repro.serve.StreamingGateway`, samples resident-set
size at chunk boundaries (off the per-packet hot path), optionally
fires one mid-replay drift→retrain→swap via :class:`TimedSwapHook`, and
reports the three endurance numbers the in-memory soaks cannot:
sustained throughput over on-disk multi-chunk streams, the memory
ceiling, and the end-to-end latency of replacing the deployed rules
while traffic flows.
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path
from typing import Callable, List, Optional, Union

from repro import obs
from repro.core.rules import RuleSet
from repro.corpus.build import CorpusManifest
from repro.corpus.source import CorpusSource
from repro.serve.gateway import ServeConfig, SoakResult, StreamingGateway

__all__ = ["TimedSwapHook", "ReplayReport", "replay_corpus", "rss_bytes"]


def rss_bytes() -> int:
    """Current resident-set size in bytes (0 where unmeasurable).

    Reads ``/proc/self/status`` ``VmRSS`` — the *current* RSS, unlike
    ``getrusage``'s lifetime high-water mark, so chunk-boundary samples
    show whether streaming replay actually holds memory flat.
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:
        return 0


class TimedSwapHook:
    """Retrain hook firing one timed rule swap after N serviced packets.

    Plugs into ``StreamingGateway(retrain_hook=...)``.  When the
    serviced-packet count crosses ``after_packets``, ``make_rules`` is
    invoked (a real detector retrain, a registry load, a synthetic
    regeneration — whatever the experiment defines as "retrain") and its
    wall-clock cost recorded; the gateway then installs the returned
    rules atomically, and :class:`ShardSet` records the install leg in
    ``swap_seconds``.  The reported drift→retrain→swap latency is the
    sum of both legs.
    """

    def __init__(self, make_rules: Callable[[], RuleSet], *, after_packets: int):
        if after_packets < 1:
            raise ValueError("after_packets must be >= 1")
        self.make_rules = make_rules
        self.after_packets = after_packets
        self.seen = 0
        self.fired_at: Optional[int] = None
        self.retrain_seconds: Optional[float] = None

    def __call__(self, packets, verdicts) -> Optional[RuleSet]:
        self.seen += len(packets)
        if self.fired_at is not None or self.seen < self.after_packets:
            return None
        start = time.perf_counter()
        rules = self.make_rules()
        self.retrain_seconds = time.perf_counter() - start
        self.fired_at = self.seen
        return rules


@dataclasses.dataclass
class ReplayReport:
    """One endurance replay's outcome: soak result + endurance telemetry."""

    result: SoakResult
    manifest: CorpusManifest
    chunks_streamed: int
    chunks_verified: int
    rss_samples: List[int]
    swap_at_packet: Optional[int] = None
    retrain_seconds: Optional[float] = None
    install_seconds: Optional[float] = None

    @property
    def peak_rss_bytes(self) -> int:
        return max(self.rss_samples) if self.rss_samples else 0

    @property
    def rss_growth_bytes(self) -> int:
        """Peak RSS minus the pre-replay baseline sample."""
        if not self.rss_samples:
            return 0
        return self.peak_rss_bytes - self.rss_samples[0]

    @property
    def swap_latency_seconds(self) -> Optional[float]:
        """End-to-end drift→retrain→swap cost (None without a swap)."""
        if self.retrain_seconds is None or self.install_seconds is None:
            return None
        return self.retrain_seconds + self.install_seconds

    def summary(self) -> str:
        lines = [self.result.summary()]
        lines.append(
            f"corpus    {self.chunks_streamed} chunks streamed, "
            f"{self.chunks_verified} digests verified"
        )
        if self.rss_samples:
            lines.append(
                f"memory    peak RSS {self.peak_rss_bytes / 1e6:,.1f} MB "
                f"(+{self.rss_growth_bytes / 1e6:,.1f} MB over baseline)"
            )
        if self.swap_latency_seconds is not None:
            lines.append(
                f"swap      drift→retrain→swap {1e3 * self.swap_latency_seconds:.2f}ms "
                f"(retrain {1e3 * self.retrain_seconds:.2f}ms + "
                f"install {1e3 * self.install_seconds:.2f}ms) "
                f"at packet {self.swap_at_packet}"
            )
        return "\n".join(lines)


def replay_corpus(
    root: Union[str, Path, CorpusManifest],
    rules: RuleSet,
    config: Optional[ServeConfig] = None,
    *,
    rate: Optional[float] = None,
    burstiness: float = 1.0,
    seed: int = 0,
    verify: bool = True,
    loop: int = 1,
    swap_after: Optional[int] = None,
    swap_rules: Optional[Callable[[], RuleSet]] = None,
    recorder=None,
    alert_engine=None,
) -> ReplayReport:
    """Stream a corpus through a gateway; returns the endurance report.

    Args:
        rate: optional offered-load re-stamping (pkts/s); ``None``
            replays at the corpus's own recorded arrival clock.
        swap_after: when set, fire one timed retrain+swap after this
            many serviced packets.
        swap_rules: the "retrain" to time; defaults to re-installing
            ``rules`` (pure swap-path latency).
    """
    gauge = obs.registry().gauge(
        "corpus_replay_rss_bytes",
        help="Resident-set size sampled at corpus chunk boundaries",
    )
    samples: List[int] = [rss_bytes()]
    gauge.set(samples[0])

    def on_chunk(index: int, meta) -> None:
        value = rss_bytes()
        samples.append(value)
        gauge.set(value)

    source = CorpusSource(
        root,
        rate=rate,
        burstiness=burstiness,
        seed=seed,
        verify=verify,
        loop=loop,
        on_chunk=on_chunk,
    )
    hook: Optional[TimedSwapHook] = None
    if swap_after is not None:
        hook = TimedSwapHook(
            swap_rules if swap_rules is not None else (lambda: rules),
            after_packets=swap_after,
        )
    gateway = StreamingGateway(
        rules,
        config,
        retrain_hook=hook,
        recorder=recorder,
        alert_engine=alert_engine,
    )
    result = gateway.run(source)
    samples.append(rss_bytes())
    gauge.set(samples[-1])
    install_seconds: Optional[float] = None
    if hook is not None and hook.fired_at is not None:
        swaps = gateway.shards.swap_seconds
        install_seconds = swaps[-1] if swaps else None
    return ReplayReport(
        result=result,
        manifest=source.manifest,
        chunks_streamed=len(source.manifest.chunks) * loop,
        chunks_verified=source.chunks_verified,
        rss_samples=samples,
        swap_at_packet=hook.fired_at if hook is not None else None,
        retrain_seconds=hook.retrain_seconds if hook is not None else None,
        install_seconds=install_seconds,
    )
