"""On-disk corpus synthesis: multi-million-packet mixed traces in chunks.

A *corpus* is a directory of standard pcap chunk files plus a JSON
``manifest.json`` describing them — chunk index, per-class packet
counts, and a sha256 content digest per chunk (always over the
*uncompressed* pcap bytes, so compressed and plain builds of the same
spec agree).  Synthesis streams one chunk at a time: packet pools are
drawn from the existing device/attack models (which ride the
PackPlan/FrameEmitter column fast path), mixed at the configured
attack:benign ratio, interleaved by a seeded permutation, re-stamped
with bursty monotone arrivals via :func:`repro.serve.retime`, written,
digested, and dropped — peak memory is a function of ``chunk_packets``,
never of ``n_packets``.

Everything is a pure function of the spec: same :class:`CorpusSpec` ⇒
byte-identical chunk files and manifest, which is what makes corpora
shareable endurance workloads rather than one-off traces.
"""

from __future__ import annotations

import collections
import dataclasses
import gzip
import hashlib
import itertools
import json
import struct
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.datasets import attacks as attacks_mod
from repro.datasets.generator import TraceConfig, _benign_models
from repro.net.packet import Packet
from repro.net.pcap import LINKTYPE_ETHERNET, LINKTYPE_USER0, MAGIC_MICROS

__all__ = [
    "CorpusError",
    "CorpusSpec",
    "ChunkMeta",
    "CorpusManifest",
    "build_corpus",
    "load_manifest",
    "family_registry",
    "MANIFEST_NAME",
    "MANIFEST_FORMAT",
]

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = "repro.corpus/1"

_STACK_FAMILIES = {
    "inet": attacks_mod.INET_ATTACKS,
    "industrial": attacks_mod.INDUSTRIAL_ATTACKS,
    "zigbee": attacks_mod.ZIGBEE_ATTACKS,
    "ble": attacks_mod.BLE_ATTACKS,
}

#: Non-IP stacks write DLT_USER0 chunks, like the trace generator.
_STACK_LINKTYPE = {
    "inet": LINKTYPE_ETHERNET,
    "industrial": LINKTYPE_ETHERNET,
    "zigbee": LINKTYPE_USER0,
    "ble": LINKTYPE_USER0,
}


class CorpusError(ValueError):
    """Raised on invalid specs, malformed manifests, or digest mismatches."""


def family_registry() -> Dict[str, type]:
    """Every known attack family, keyed by its label category."""
    known: Dict[str, type] = {}
    for families in _STACK_FAMILIES.values():
        for cls in families:
            known[cls.category] = cls
    for cls in attacks_mod.INET_ATTACKS_EXTENDED + [attacks_mod.Ipv6CoapFlood]:
        known[cls.category] = cls
    return known


@dataclasses.dataclass
class CorpusSpec:
    """Parameters of one corpus — the whole identity of its bytes.

    Attributes:
        stack: protocol stack (``"inet"``, ``"industrial"``,
            ``"zigbee"``, ``"ble"``).
        n_packets: total packets across all chunks.
        chunk_packets: packets per chunk file (the memory ceiling knob);
            the final chunk holds the remainder.
        attack_fraction: fraction of each chunk drawn from attack
            families (split evenly across them); the rest is benign
            device traffic.  The default mirrors volumetric-incident
            captures, where flood traffic rivals the device baseline
            packet-for-packet.
        attack_families: attack label categories to mix in (e.g.
            ``["syn_flood", "port_scan"]``); ``None`` means every family
            registered for the stack.
        n_devices: benign devices per device model.
        rate: offered-load re-stamping rate in pkts/s of stream time.
        burstiness: burst factor for the arrival process (1.0 = Poisson).
        seed: one seed drives pools, mixing, and arrivals; equal specs
            produce byte-identical corpora.
        compress: write gzip chunks (``chunk-*.pcap.gz``); digests stay
            those of the uncompressed bytes.
        window: seconds of model time generated per pool refill.  Wider
            windows amortise per-model call overhead and generate
            measurably faster; they also lengthen benign sessions, so
            the value is part of the spec (it shapes the bytes).
        attack_rate_scale: multiply each family's native packet rate
            (larger ⇒ fewer, denser generation windows; affects only
            how pools are drawn, not the mix ratio).
    """

    stack: str = "inet"
    n_packets: int = 1_000_000
    chunk_packets: int = 200_000
    attack_fraction: float = 0.5
    attack_families: Optional[Sequence[str]] = None
    n_devices: int = 4
    rate: float = 50_000.0
    burstiness: float = 4.0
    seed: int = 7
    compress: bool = False
    window: float = 120.0
    attack_rate_scale: float = 20.0

    def __post_init__(self) -> None:
        if self.stack not in _STACK_FAMILIES:
            raise CorpusError(f"unknown stack {self.stack!r}")
        if self.n_packets < 1:
            raise CorpusError("n_packets must be >= 1")
        if self.chunk_packets < 1:
            raise CorpusError("chunk_packets must be >= 1")
        if not 0.0 <= self.attack_fraction <= 1.0:
            raise CorpusError("attack_fraction must be in [0, 1]")
        if self.rate <= 0:
            raise CorpusError("rate must be positive")
        if self.burstiness < 1.0:
            raise CorpusError("burstiness must be >= 1.0")
        if self.n_devices < 1:
            raise CorpusError("need at least one device")
        if self.window <= 0:
            raise CorpusError("window must be positive")
        if self.attack_rate_scale <= 0:
            raise CorpusError("attack_rate_scale must be positive")
        if self.attack_families is not None:
            self.attack_families = list(self.attack_families)
            known = family_registry()
            for name in self.attack_families:
                if name not in known:
                    raise CorpusError(
                        f"unknown attack family {name!r} "
                        f"(known: {', '.join(sorted(known))})"
                    )

    def resolved_families(self) -> List[type]:
        """The attack model classes this spec mixes in, in order."""
        if self.attack_families is None:
            return list(_STACK_FAMILIES[self.stack])
        known = family_registry()
        return [known[name] for name in self.attack_families]

    @property
    def linktype(self) -> int:
        return _STACK_LINKTYPE[self.stack]

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CorpusSpec":
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise CorpusError(f"unknown spec fields {sorted(unknown)}")
        return cls(**data)


@dataclasses.dataclass
class ChunkMeta:
    """One chunk's manifest entry."""

    file: str
    packets: int
    bytes: int                      # uncompressed pcap byte size
    digest: str                     # sha256 of the uncompressed pcap bytes
    first_timestamp: float
    last_timestamp: float
    classes: Dict[str, int]

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChunkMeta":
        return cls(**data)


@dataclasses.dataclass
class CorpusManifest:
    """The corpus index: spec echo plus per-chunk metadata.

    ``root`` is attached by :func:`load_manifest` / :func:`build_corpus`
    so chunk paths resolve; it is not serialised (a corpus directory can
    be moved freely).
    """

    spec: CorpusSpec
    chunks: List[ChunkMeta]
    root: Optional[Path] = None

    @property
    def packets(self) -> int:
        return sum(chunk.packets for chunk in self.chunks)

    @property
    def bytes(self) -> int:
        return sum(chunk.bytes for chunk in self.chunks)

    @property
    def duration(self) -> float:
        return self.chunks[-1].last_timestamp if self.chunks else 0.0

    def class_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for chunk in self.chunks:
            for name, count in chunk.classes.items():
                counts[name] = counts.get(name, 0) + count
        return counts

    def chunk_path(self, chunk: ChunkMeta) -> Path:
        if self.root is None:
            raise CorpusError("manifest has no root directory attached")
        return self.root / chunk.file

    def to_json(self) -> str:
        payload = {
            "format": MANIFEST_FORMAT,
            "spec": self.spec.to_dict(),
            "packets": self.packets,
            "bytes": self.bytes,
            "duration": self.duration,
            "classes": self.class_counts(),
            "chunks": [chunk.to_dict() for chunk in self.chunks],
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str, *, root: Optional[Path] = None) -> "CorpusManifest":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CorpusError(f"malformed manifest: {exc}") from exc
        if payload.get("format") != MANIFEST_FORMAT:
            raise CorpusError(
                f"unsupported manifest format {payload.get('format')!r}"
            )
        return cls(
            spec=CorpusSpec.from_dict(payload["spec"]),
            chunks=[ChunkMeta.from_dict(c) for c in payload["chunks"]],
            root=root,
        )

    def summary(self) -> str:
        counts = self.class_counts()
        parts = [f"{name}={count}" for name, count in sorted(counts.items())]
        lines = [
            f"corpus    {self.packets:,} packets in {len(self.chunks)} chunks "
            f"({self.bytes / 1e6:,.1f} MB pcap, "
            f"{self.duration:,.1f}s stream time)",
            f"spec      stack={self.spec.stack} seed={self.spec.seed} "
            f"rate={self.spec.rate:,.0f} pkts/s "
            f"burstiness={self.spec.burstiness} "
            f"attack_fraction={self.spec.attack_fraction}"
            + (" compress" if self.spec.compress else ""),
            "classes   " + ", ".join(parts),
        ]
        return "\n".join(lines)


def load_manifest(root: Union[str, Path]) -> CorpusManifest:
    """Load ``manifest.json`` from a corpus directory (or manifest path)."""
    path = Path(root)
    if path.is_dir():
        path = path / MANIFEST_NAME
    if not path.exists():
        raise CorpusError(f"no corpus manifest at {path}")
    return CorpusManifest.from_json(
        path.read_text(encoding="utf-8"), root=path.parent
    )


class _Well:
    """One traffic class's packet supply, refilled a window at a time.

    Draws from a dedicated rng stream, so the packet sequence is a pure
    function of the seed no matter how ``take`` calls are batched into
    chunks — chunking the corpus differently reorders nothing.  The
    buffer is a list consumed by slice, so ``take`` costs one C-level
    copy per refill rather than a Python pop per packet.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        make_window: Callable[[np.random.Generator], List[Packet]],
    ):
        self._rng = rng
        self._make_window = make_window
        self._buffer: List[Packet] = []
        self._offset = 0

    def take(self, n: int) -> List[Packet]:
        out: List[Packet] = []
        dry_windows = 0
        while True:
            available = len(self._buffer) - self._offset
            need = n - len(out)
            if available >= need:
                out.extend(self._buffer[self._offset : self._offset + need])
                self._offset += need
                return out
            if available:
                out.extend(self._buffer[self._offset :])
            window = self._make_window(self._rng)
            if not window:
                dry_windows += 1
                if dry_windows > 1000:
                    raise CorpusError(
                        "traffic model produced no packets in 1000 "
                        "consecutive windows"
                    )
            else:
                dry_windows = 0
            self._buffer = window
            self._offset = 0


def _benign_well(spec: CorpusSpec) -> _Well:
    config = TraceConfig(
        stack=spec.stack,
        duration=spec.window,
        n_devices=spec.n_devices,
        seed=spec.seed,
    )
    models = _benign_models(config)

    def make_window(rng: np.random.Generator) -> List[Packet]:
        packets: List[Packet] = []
        for model in models:
            packets.extend(model.generate(rng, 0.0, spec.window))
        packets.sort(key=lambda p: p.timestamp)
        return packets

    return _Well(np.random.default_rng([spec.seed, 0]), make_window)


def _attack_well(spec: CorpusSpec, family: type, index: int) -> _Well:
    model = family(index)
    model.rate *= spec.attack_rate_scale

    def make_window(rng: np.random.Generator) -> List[Packet]:
        return sorted(
            model.generate(rng, 0.0, spec.window), key=lambda p: p.timestamp
        )

    return _Well(np.random.default_rng([spec.seed, 1 + index]), make_window)


def _chunk_sizes(spec: CorpusSpec) -> List[int]:
    full, remainder = divmod(spec.n_packets, spec.chunk_packets)
    return [spec.chunk_packets] * full + ([remainder] if remainder else [])


def _class_targets(spec: CorpusSpec, chunk_n: int, n_families: int) -> Tuple[int, List[int]]:
    """(benign count, per-family attack counts) for one chunk."""
    if n_families == 0 or spec.attack_fraction == 0.0:
        return chunk_n, [0] * n_families
    n_attack = min(chunk_n, int(round(chunk_n * spec.attack_fraction)))
    base, extra = divmod(n_attack, n_families)
    per_family = [base + (1 if i < extra else 0) for i in range(n_families)]
    return chunk_n - n_attack, per_family


def _burst_times(
    rng: np.random.Generator,
    n: int,
    *,
    rate: float,
    burstiness: float,
    start: float,
) -> np.ndarray:
    """``n`` bursty monotone arrival stamps, strictly after ``start``.

    The vectorised twin of :func:`repro.serve.retime`'s arrival process:
    burst sizes are geometric with mean ``burstiness``, bursts are
    spaced exponentially so the long-run rate is ``rate``, and every
    packet of a burst shares its burst's timestamp.
    """
    if n == 0:
        return np.empty(0, dtype=np.float64)
    parts: List[np.ndarray] = []
    total = 0
    while total < n:
        need = max(64, int((n - total) / burstiness) + 8)
        draw = rng.geometric(1.0 / burstiness, size=need)
        parts.append(draw)
        total += int(draw.sum())
    sizes = np.concatenate(parts) if len(parts) > 1 else parts[0]
    n_bursts = int(np.searchsorted(np.cumsum(sizes), n, side="left")) + 1
    sizes = sizes[:n_bursts]
    gaps = rng.exponential(burstiness / rate, size=n_bursts)
    return np.repeat(start + np.cumsum(gaps), sizes)[:n]


_SNAPLEN = 65535


def _serialize_pcap(
    payloads: Sequence[bytes], times: np.ndarray, *, linktype: int
) -> bytes:
    """Column-serialise one chunk to little-endian µs pcap bytes.

    Record headers are built as one ``(n, 4)`` uint32 array and the file
    assembled in a single join — the write-side analogue of the PackPlan
    column path, ~10x over packing records one at a time.
    """
    n = len(payloads)
    seconds = np.floor(times)
    micros = np.round((times - seconds) * 1e6)
    rolled = micros >= 1e6  # float rounding up to a whole second
    if rolled.any():
        seconds = seconds + rolled
        micros = micros - rolled * 1e6
    lengths = np.fromiter(map(len, payloads), dtype=np.int64, count=n)
    if n and int(lengths.max()) > _SNAPLEN:
        raise CorpusError(f"packet exceeds pcap snaplen {_SNAPLEN}")
    headers = np.empty((n, 4), dtype="<u4")
    headers[:, 0] = seconds
    headers[:, 1] = micros
    headers[:, 2] = lengths
    headers[:, 3] = lengths
    view = memoryview(headers.tobytes())
    global_header = struct.pack(
        "<IHHiIII", MAGIC_MICROS, 2, 4, 0, 0, _SNAPLEN, linktype
    )
    # Interleave record headers and payloads entirely in C: slice views
    # over the header block, then one join over a chained iterator.
    header_slices = [view[16 * i : 16 * (i + 1)] for i in range(n)]
    return global_header + b"".join(
        itertools.chain.from_iterable(zip(header_slices, payloads))
    )


def _write_chunk(path: Path, blob: bytes, *, compress: bool) -> str:
    """Write one serialised chunk; returns its sha256 (uncompressed bytes)."""
    digest = hashlib.sha256(blob).hexdigest()
    with open(path, "wb") as raw:
        if compress:
            # filename="" and mtime=0 keep the gzip header free of
            # environment state — equal content ⇒ equal file bytes.
            with gzip.GzipFile(
                filename="", fileobj=raw, mode="wb", mtime=0
            ) as zipped:
                zipped.write(blob)
        else:
            raw.write(blob)
    return digest


def build_corpus(
    spec: CorpusSpec,
    out_dir: Union[str, Path],
    *,
    force: bool = False,
    progress: Optional[Callable[[int, int, ChunkMeta], None]] = None,
) -> CorpusManifest:
    """Synthesize a corpus to ``out_dir``; returns the written manifest.

    Streams chunk-at-a-time: at no point is more than one chunk of
    packets resident, so multi-million-packet corpora build in the same
    memory as a single chunk.  Refuses to overwrite an existing corpus
    unless ``force`` is set.

    Args:
        progress: optional ``(chunk_index, n_chunks, meta)`` callback
            fired after each chunk lands on disk (CLI progress, RSS
            sampling in tests).
    """
    out = Path(out_dir)
    manifest_path = out / MANIFEST_NAME
    if manifest_path.exists() and not force:
        raise CorpusError(
            f"corpus already exists at {out} (use force to rebuild)"
        )
    out.mkdir(parents=True, exist_ok=True)

    registry = obs.registry()
    packets_total = registry.counter(
        "corpus_build_packets_total", help="Packets synthesized to corpus chunks"
    )
    chunks_total = registry.counter(
        "corpus_build_chunks_total", help="Corpus chunk files written"
    )
    chunk_seconds = registry.histogram(
        "corpus_chunk_build_seconds",
        unit="s",
        help="Wall-clock seconds to synthesize + write one corpus chunk",
    )

    families = spec.resolved_families()
    if spec.attack_fraction > 0.0 and not families:
        raise CorpusError("attack_fraction > 0 with no attack families")
    benign = _benign_well(spec)
    wells = [
        _attack_well(spec, family, index)
        for index, family in enumerate(families)
    ]

    sizes = _chunk_sizes(spec)
    suffix = ".pcap.gz" if spec.compress else ".pcap"
    chunks: List[ChunkMeta] = []
    clock = 0.0
    with registry.span("corpus.build"):
        for index, size in enumerate(sizes):
            chunk_start = time.perf_counter()
            n_benign, per_family = _class_targets(spec, size, len(families))
            pool = benign.take(n_benign)
            # Per-class counts are exact by construction (each well
            # yields a single label category), so no counting pass.
            counts = collections.Counter({"benign": n_benign} if n_benign else {})
            for well, family, count in zip(wells, families, per_family):
                pool.extend(well.take(count))
                counts[family.category] += count
            mix_rng = np.random.default_rng([spec.seed, 1000, index])
            order = mix_rng.permutation(len(pool))
            times = _burst_times(
                np.random.default_rng([spec.seed, 2000, index]),
                len(pool),
                rate=spec.rate,
                burstiness=spec.burstiness,
                start=clock,
            )
            payloads = [pool[i].data for i in order]
            blob = _serialize_pcap(payloads, times, linktype=spec.linktype)
            clock = float(times[-1])
            name = f"chunk-{index:05d}{suffix}"
            digest = _write_chunk(out / name, blob, compress=spec.compress)
            meta = ChunkMeta(
                file=name,
                packets=size,
                bytes=len(blob),
                digest=digest,
                first_timestamp=float(times[0]),
                last_timestamp=float(times[-1]),
                classes={k: v for k, v in sorted(counts.items()) if v},
            )
            chunks.append(meta)
            packets_total.inc(size)
            chunks_total.inc()
            chunk_seconds.observe(time.perf_counter() - chunk_start)
            if progress is not None:
                progress(index, len(sizes), meta)

    manifest = CorpusManifest(spec=spec, chunks=chunks, root=out)
    manifest_path.write_text(manifest.to_json(), encoding="utf-8")
    return manifest
