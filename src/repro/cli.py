"""Command-line interface: train, inspect, compile and evaluate gateways.

Installed as the ``repro`` console script::

    repro train --synthetic inet --rules rules.json --model model.npz
    repro train --pcap capture.pcap --labels labels.csv --rules rules.json
    repro rules rules.json
    repro p4 rules.json --out gateway.p4
    repro simulate rules.json --pcap capture.pcap
    repro eval rules.json --pcap capture.pcap --labels labels.csv
    repro stats rules.json --synthetic inet --format table
    repro serve rules.json --synthetic inet --rate 50000 --shards 4

Label files are CSV with one ``index,category`` row per packet (category
``benign`` or any attack name); packets not listed default to benign.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from repro.core import DetectorConfig, TwoStageDetector
from repro.core.serialize import load_ruleset, save_ruleset
from repro.dataplane import GatewayController, generate_p4_program
from repro.datasets import FeatureExtractor, standard_suite
from repro.eval.metrics import binary_metrics
from repro.net.packet import Packet
from repro.net.pcap import read_pcap

__all__ = ["main", "build_parser"]


def _load_labels(path: Path, count: int) -> np.ndarray:
    """Read an index,category CSV into a binary label vector."""
    labels = np.zeros(count, dtype=np.int64)
    with open(path, newline="", encoding="utf-8") as handle:
        for row in csv.reader(handle):
            if not row or row[0].startswith("#") or row[0] == "index":
                continue
            index = int(row[0])
            if not 0 <= index < count:
                raise SystemExit(f"label index {index} out of range 0..{count - 1}")
            labels[index] = 0 if row[1].strip() == "benign" else 1
    return labels


def _load_packets(args) -> tuple:
    """(packets, binary labels or None) from --pcap/--labels or --synthetic."""
    if args.pcap:
        packets = read_pcap(args.pcap)
        labels = (
            _load_labels(Path(args.labels), len(packets))
            if getattr(args, "labels", None)
            else None
        )
        return packets, labels
    if getattr(args, "synthetic", None):
        if args.synthetic == "industrial":
            from repro.datasets import TraceConfig, make_dataset

            dataset = make_dataset(
                "industrial",
                TraceConfig(stack="industrial", duration=40.0, n_devices=3),
            )
        else:
            dataset = standard_suite()[args.synthetic]
        packets = dataset.train_packets + dataset.test_packets
        labels = np.concatenate(
            [dataset.y_train_binary, dataset.y_test_binary]
        )
        return packets, labels
    raise SystemExit("need --pcap or --synthetic")


def cmd_train(args) -> int:
    packets, labels = _load_packets(args)
    if labels is None:
        raise SystemExit("training requires --labels with --pcap")
    extractor = FeatureExtractor(n_bytes=args.window)
    x = extractor.transform(packets)
    config = DetectorConfig(
        n_bytes=args.window, n_fields=args.fields, seed=args.seed
    )
    detector = TwoStageDetector(config)
    detector.fit(x, labels)
    rules = detector.generate_rules()
    if args.optimize:
        from repro.core import optimize_ruleset

        rules, report = optimize_ruleset(rules)
        print(f"optimised: {report}")
    print(f"trained on {len(packets)} packets "
          f"({int(labels.sum())} attack / {int((labels == 0).sum())} benign)")
    print(f"selected offsets: {list(detector.offsets or ())}")
    print(rules.describe())
    save_ruleset(rules, args.rules)
    print(f"wrote {args.rules}")
    if args.model:
        assert detector.classifier is not None
        detector.classifier.model.save(args.model)
        print(f"wrote {args.model}")
    return 0


def cmd_rules(args) -> int:
    rules = load_ruleset(args.rules)
    print(rules.describe())
    report = rules.resource_report()
    print(
        f"\nresources: {report['rules']} rules, "
        f"{report['ternary_entries']} ternary entries, "
        f"key {report['match_width_bits']}b, TCAM {report['tcam_bits']}b"
    )
    return 0


def cmd_synth(args) -> int:
    from repro.datasets import TraceConfig, generate_trace
    from repro.net.pcap import write_pcap

    config = TraceConfig(
        stack=args.stack,
        duration=args.duration,
        n_devices=args.devices,
        seed=args.seed,
        chatter=args.chatter,
    )
    packets = generate_trace(config)
    write_pcap(args.pcap, packets)
    print(f"wrote {args.pcap} ({len(packets)} packets)")
    if args.labels:
        with open(args.labels, "w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["index", "category"])
            for index, packet in enumerate(packets):
                writer.writerow([index, packet.label.category])
        print(f"wrote {args.labels}")
    return 0


def cmd_cache(args) -> int:
    from repro.datasets import cache as cache_mod

    if args.action == "list":
        found = cache_mod.entries()
        print(f"cache dir: {cache_mod.cache_dir()}")
        if not found:
            print("(empty)")
            return 0
        for entry in found:
            if entry.get("corrupted"):
                print(f"  {entry['key'][:12]}…  CORRUPTED ({entry['size_bytes']} bytes)")
                continue
            config = entry.get("config", {})
            print(
                f"  {entry['key'][:12]}…  {entry.get('name', '?'):<12} "
                f"stack={config.get('stack', '?')} "
                f"duration={config.get('duration', '?')} "
                f"seed={config.get('seed', '?')} "
                f"train/test={entry.get('n_train', '?')}/{entry.get('n_test', '?')} "
                f"({entry['size_bytes'] // 1024} KiB)"
            )
        return 0
    if args.action == "clear":
        removed = cache_mod.clear()
        print(f"removed {removed} entries from {cache_mod.cache_dir()}")
        return 0
    # warm: generate (or verify) the standard suite into the cache.
    suite = standard_suite(
        duration=args.duration,
        n_devices=args.devices,
        n_bytes=args.window,
        seed=args.seed,
        cache=True,
    )
    for name, dataset in suite.items():
        print(dataset.summary())
    print(f"cache dir: {cache_mod.cache_dir()}")
    return 0


def _format_decision(record, controller) -> str:
    """Render one DecisionRecord as an operator-readable match trace."""
    # getattr: records parsed from pre-fleet JSONL dumps (or foreign
    # tooling) may predate the tenant field — degrade, don't crash.
    tenant = getattr(record, "tenant", None)
    lines = [
        f"packet #{record.seq}  t={record.timestamp:.6f}s  "
        f"verdict={record.verdict}"
        + (f"  tenant={tenant}" if tenant is not None else ""),
        "tables consulted: "
        + (" -> ".join(record.tables) if record.tables else "(none)"),
        "key bytes: "
        + "  ".join(
            f"b[{offset}]=0x{value:02x} ({value})"
            for offset, value in zip(record.offsets, record.values)
        ),
    ]
    if record.entry_id is None:
        lines.append(
            f"matched: no entry — default action of table "
            f"{record.tables[-1] if record.tables else '?'!s} applied"
        )
        return "\n".join(lines)
    lines.append(f"matched: table={record.table} entry={record.entry_id}")
    try:
        rule = controller.rule_for_entry(record.entry_id)
    except KeyError:
        lines.append("rule: (entry no longer installed)")
        return "\n".join(lines)
    lines.append(
        f"rule: {rule}  (confidence {rule.confidence:.3f}, "
        f"label {rule.label})"
    )
    if rule.provenance:
        lines.append("tree path: " + " -> ".join(rule.provenance))
    else:
        lines.append("tree path: (hand-written rule — no distillation path)")
    return "\n".join(lines)


def cmd_explain(args) -> int:
    rules = load_ruleset(args.rules)
    if args.index is None:
        from repro.eval.interpret import explain_ruleset

        print(explain_ruleset(rules, stack=args.stack))
        return 0
    # Packet-replay mode: run one packet through a deployed switch with a
    # full-sampling flight recorder and print its provenance trace.
    from repro import obs

    packets, __ = _load_packets(args)
    if not 0 <= args.index < len(packets):
        raise SystemExit(
            f"--index {args.index} out of range 0..{len(packets) - 1}"
        )
    controller = _controller_for(rules, args.table_capacity)
    controller.deploy(rules)
    recorder = obs.FlightRecorder(capacity=1, sample_rate=1.0)
    controller.switch.attach_recorder(recorder)
    controller.switch.process(packets[args.index], seq=args.index)
    print(_format_decision(recorder.records()[0], controller))
    return 0


def cmd_p4(args) -> int:
    rules = load_ruleset(args.rules)
    program = generate_p4_program(
        rules.offsets,
        ruleset=rules if args.const_entries else None,
        table_size=args.table_size,
    )
    Path(args.out).write_text(program, encoding="utf-8")
    print(f"wrote {args.out} ({len(program.splitlines())} lines)")
    return 0


def _controller_for(
    rules, table_capacity: Optional[int] = None
) -> GatewayController:
    capacity = table_capacity or max(
        4096, rules.resource_report()["ternary_entries"]
    )
    return GatewayController.for_ruleset(rules, table_capacity=capacity)


def cmd_simulate(args) -> int:
    if args.batch_size is not None and args.batch_size < 1:
        raise SystemExit("--batch-size must be >= 1")
    rules = load_ruleset(args.rules)
    packets, __ = _load_packets(args)
    controller = _controller_for(rules, args.table_capacity)
    controller.deploy(rules)
    controller.switch.process_trace(packets, batch_size=args.batch_size)
    stats = controller.switch.stats
    print(
        f"{stats.received} packets: {stats.dropped} dropped "
        f"({100 * stats.drop_rate:.1f}%), {stats.allowed} allowed"
    )
    for rule, hits in zip(rules, controller.rule_hit_counts()):
        print(f"  {hits:>8} hits  {rule}")
    return 0


def cmd_stats(args) -> int:
    """Replay traffic with observability on and dump the metric registry.

    Two modes: with ``--snapshot`` an existing JSONL snapshot (e.g. saved
    by an earlier run via ``--save``) is rendered without replaying
    anything; otherwise the rule set is deployed on a fresh gateway, the
    input trace is replayed with an enabled registry, and the resulting
    snapshot is rendered.  See docs/OBSERVABILITY.md for the catalogue.
    """
    from repro import obs

    if args.snapshot:
        snapshot = obs.read_jsonl(args.snapshot)
    else:
        if not args.rules:
            raise SystemExit("need a rules file (or --snapshot)")
        from repro.eval.harness import replay_gateway

        rules = load_ruleset(args.rules)
        packets, __ = _load_packets(args)
        registry = obs.Registry(enabled=True)
        with obs.use_registry(registry):
            replay_gateway(
                rules,
                packets,
                batch_size=args.batch_size,
                table_capacity=args.table_capacity,
            )
        snapshot = registry.snapshot()
    if args.save:
        obs.write_jsonl(snapshot, args.save)
        print(f"wrote {args.save}", file=sys.stderr)
    if args.format == "jsonl":
        sys.stdout.write(obs.to_jsonl(snapshot))
    elif args.format == "prometheus":
        sys.stdout.write(obs.to_prometheus(snapshot))
    else:
        print(obs.render_table(snapshot))
    return 0


def cmd_eval(args) -> int:
    if args.batch_size is not None and args.batch_size < 1:
        raise SystemExit("--batch-size must be >= 1")
    rules = load_ruleset(args.rules)
    packets, labels = _load_packets(args)
    if labels is None:
        raise SystemExit("evaluation requires --labels with --pcap")
    controller = _controller_for(rules, args.table_capacity)
    controller.deploy(rules)
    verdicts = controller.switch.process_trace(packets, batch_size=args.batch_size)
    predictions = np.array([1 if v.dropped else 0 for v in verdicts])
    metrics = binary_metrics(labels, predictions)
    for key, value in metrics.row().items():
        print(f"{key:>10}: {value}")
    return 0


def cmd_serve(args) -> int:
    """Run a timed streaming soak and render the telemetry snapshot.

    The serving counterpart of ``repro stats``: deploy the rule set on a
    sharded :class:`~repro.serve.gateway.StreamingGateway`, feed it a
    packet stream (seeded synthetic traffic at a configurable offered
    load, or a streaming pcap), and report throughput, latency
    percentiles, shed accounting and the full observability snapshot.
    """
    from repro import obs
    from repro.serve import (
        PcapSource,
        ServeConfig,
        StreamingGateway,
        SyntheticSource,
    )

    if args.rules is None and not args.tenants:
        raise SystemExit("need a rules file (or --tenants)")
    if args.pcap:
        source = PcapSource(
            args.pcap,
            rate=args.rate,
            loop=args.loop,
            burstiness=args.burstiness,
            seed=args.seed,
        )
    else:
        source = SyntheticSource(
            rate=args.rate or 50_000.0,
            n_packets=args.packets,
            stack=args.synthetic or "inet",
            burstiness=args.burstiness,
            seed=args.seed,
        )
    n_shards = args.workers if args.workers is not None else args.shards
    config = ServeConfig(
        n_shards=n_shards,
        max_batch=args.max_batch,
        max_latency=args.max_latency_ms / 1000.0,
        queue_capacity=args.queue_capacity,
        policy=args.policy,
        service_rate=args.service_rate,
        table_capacity=args.table_capacity,
        hash_mode=args.hash_mode,
        record_verdicts=False,
        executor=args.executor,
        ring_slots=args.ring_slots,
    )
    recorder = None
    engine = None
    if args.flight_dump or args.alerts:
        recorder = obs.FlightRecorder(
            args.flight_capacity,
            sample_rate=args.sample_rate,
            seed=args.seed,
        )
    registry = obs.Registry(enabled=True)
    with obs.use_registry(registry):
        alert_rules = obs.default_serve_alerts(
            shed_rate=args.alert_shed_rate,
            batcher_wait_p99=config.max_latency,
        )
        if args.tenants:
            from repro.fleet import FleetGateway, load_fleet_spec

            capacity, specs = load_fleet_spec(
                args.tenants, registry_root=args.registry_root
            )
            if args.fleet_capacity is not None:
                capacity = args.fleet_capacity
            if args.alerts:
                engine = obs.AlertEngine(
                    alert_rules + obs.default_fleet_alerts(),
                    registry=registry,
                    recorder=recorder,
                    dump_path=args.flight_dump,
                )
            gateway = FleetGateway(
                specs,
                config,
                capacity=capacity,
                recorder=recorder,
                alert_engine=engine,
            )
        else:
            rules = load_ruleset(args.rules)
            if args.alerts:
                engine = obs.AlertEngine(
                    alert_rules,
                    registry=registry,
                    recorder=recorder,
                    dump_path=args.flight_dump,
                )
            gateway = StreamingGateway(
                rules, config, recorder=recorder, alert_engine=engine
            )
        result = gateway.run(source)
    print(result.summary())
    for alert in result.alerts:
        print(f"  ALERT {alert.message}")
    for name, account in getattr(result, "accounts", {}).items():
        print(
            f"  tenant {name}: band={account.band} v{account.version} "
            f"{account.reason} — entries offered={account.offered} "
            f"installed={account.installed} evicted={account.evicted}"
        )
    if recorder is not None and args.flight_dump:
        recorder.dump(args.flight_dump)
        stats = recorder.stats()
        print(
            f"wrote {args.flight_dump} ({stats['resident']} records: "
            f"{stats['critical']} critical, {stats['permits']} sampled "
            f"permits)",
            file=sys.stderr,
        )
    for row in getattr(result, "per_shard", ()):
        print(
            f"  shard {row['shard']}: {row['processed']} processed, "
            f"{row['shed']} shed, queue high-watermark "
            f"{row['queue_high_watermark']}, verdicts {row['verdicts']}"
        )
    snapshot = registry.snapshot()
    if args.save:
        obs.write_jsonl(snapshot, args.save)
        print(f"wrote {args.save}", file=sys.stderr)
    if args.format == "jsonl":
        sys.stdout.write(obs.to_jsonl(snapshot))
    elif args.format == "prometheus":
        sys.stdout.write(obs.to_prometheus(snapshot))
    elif args.format == "table":
        print()
        print(obs.render_table(snapshot))
    return 0


def cmd_registry(args) -> int:
    """Manage the versioned detector registry (train/list/show/rm)."""
    from repro.fleet import DetectorRegistry, RegistryError

    registry = DetectorRegistry(args.root)
    try:
        if args.registry_command == "train":
            if args.from_rules:
                meta = registry.put(
                    args.device_class,
                    load_ruleset(args.from_rules),
                    note=args.note,
                )
            else:
                meta = registry.train(
                    args.device_class,
                    stack=args.stack,
                    duration=args.duration,
                    n_devices=args.devices,
                    window=args.window,
                    fields=args.fields,
                    seed=args.seed,
                    optimize=args.optimize,
                    note=args.note,
                )
            print(
                f"registered {meta.ref}: {meta.rules} rules, "
                f"{meta.ternary_entries} ternary entries "
                f"(sha256 {meta.digest[:12]})"
            )
        elif args.registry_command == "list":
            artifacts = registry.list(args.device_class)
            if not artifacts:
                print("(registry is empty)")
            for meta in artifacts:
                print(
                    f"{meta.ref:<24} {meta.rules:>5} rules "
                    f"{meta.ternary_entries:>6} entries  {meta.created}"
                    + (f"  {meta.note}" if meta.note else "")
                )
        elif args.registry_command == "show":
            rules, meta = registry.get(args.ref)
            print(f"{meta.ref}  (sha256 {meta.digest})")
            print(f"created {meta.created}")
            if meta.note:
                print(meta.note)
            print(rules.describe())
        elif args.registry_command == "rm":
            removed = registry.rm(args.ref)
            print(f"removed {removed} version(s) of {args.ref}")
    except RegistryError as exc:
        raise SystemExit(str(exc))
    return 0


def cmd_corpus(args) -> int:
    """Build, inspect and endurance-replay on-disk trace corpora."""
    from repro import obs
    from repro.corpus import (
        CorpusError,
        CorpusSpec,
        build_corpus,
        load_manifest,
        replay_corpus,
    )

    try:
        if args.corpus_command == "build":
            spec = CorpusSpec(
                stack=args.stack,
                n_packets=args.packets,
                chunk_packets=args.chunk_packets,
                attack_fraction=args.attack_fraction,
                attack_families=(
                    args.families.split(",") if args.families else None
                ),
                n_devices=args.devices,
                rate=args.rate,
                burstiness=args.burstiness,
                seed=args.seed,
                compress=args.compress,
                window=args.window,
                attack_rate_scale=args.attack_rate_scale,
            )

            def progress(index: int, total: int, meta) -> None:
                print(
                    f"chunk {index + 1}/{total}: {meta.file} "
                    f"({meta.packets} packets, {meta.bytes / 1e6:.1f} MB, "
                    f"sha256 {meta.digest[:12]})",
                    file=sys.stderr,
                )

            import time as _time

            start = _time.perf_counter()
            manifest = build_corpus(
                spec, args.out, force=args.force, progress=progress
            )
            elapsed = _time.perf_counter() - start
            print(manifest.summary())
            print(
                f"built in {elapsed:.1f}s "
                f"({manifest.packets / elapsed:,.0f} pkt/s)"
            )
        elif args.corpus_command == "info":
            manifest = load_manifest(args.root)
            print(manifest.summary())
            if args.chunks:
                for meta in manifest.chunks:
                    classes = ", ".join(
                        f"{name}={count}"
                        for name, count in sorted(meta.classes.items())
                    )
                    print(
                        f"  {meta.file}: {meta.packets} packets "
                        f"[{meta.first_timestamp:.3f}s, "
                        f"{meta.last_timestamp:.3f}s] {classes}"
                    )
        elif args.corpus_command == "replay":
            from repro.serve import ServeConfig

            if args.rules:
                rules = load_ruleset(args.rules)
            else:
                from repro.eval.harness import synthetic_firewall_ruleset

                rules = synthetic_firewall_ruleset(seed=args.seed)
            n_shards = (
                args.workers if args.workers is not None else args.shards
            )
            config = ServeConfig(
                n_shards=n_shards,
                max_batch=args.max_batch,
                max_latency=args.max_latency_ms / 1000.0,
                queue_capacity=args.queue_capacity,
                policy=args.policy,
                service_rate=args.service_rate,
                table_capacity=args.table_capacity,
                record_verdicts=False,
                executor=args.executor,
            )
            registry = obs.Registry(enabled=True)
            with obs.use_registry(registry):
                report = replay_corpus(
                    args.root,
                    rules,
                    config,
                    rate=args.rate,
                    burstiness=args.burstiness,
                    seed=args.seed,
                    verify=not args.no_verify,
                    loop=args.loop,
                    swap_after=args.swap_after,
                )
            print(report.summary())
            snapshot = registry.snapshot()
            if args.save:
                obs.write_jsonl(snapshot, args.save)
                print(f"wrote {args.save}", file=sys.stderr)
            if args.format == "jsonl":
                sys.stdout.write(obs.to_jsonl(snapshot))
            elif args.format == "prometheus":
                sys.stdout.write(obs.to_prometheus(snapshot))
            elif args.format == "table":
                print()
                print(obs.render_table(snapshot))
    except CorpusError as exc:
        raise SystemExit(str(exc))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Two-stage learned IoT firewall (ICDCS 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_input(p, labels_required=False):
        p.add_argument("--pcap", help="input pcap file")
        p.add_argument(
            "--labels",
            required=False,
            help="CSV of index,category packet labels",
        )
        p.add_argument(
            "--synthetic",
            choices=["inet", "industrial", "zigbee", "ble"],
            help="use a built-in synthetic trace instead of a pcap",
        )

    train = sub.add_parser("train", help="train and emit a rule set")
    add_input(train)
    train.add_argument("--rules", required=True, help="output rules JSON")
    train.add_argument("--model", help="optional output model .npz")
    train.add_argument("--fields", type=int, default=6, help="field budget k")
    train.add_argument("--window", type=int, default=64, help="byte window")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument(
        "--optimize",
        action="store_true",
        help="merge/shadow-eliminate rules before writing them",
    )
    train.set_defaults(func=cmd_train)

    rules = sub.add_parser("rules", help="inspect a rules JSON file")
    rules.add_argument("rules", help="rules JSON")
    rules.set_defaults(func=cmd_rules)

    explain = sub.add_parser(
        "explain",
        help="operator-readable rule report, or a single packet's full "
        "match trace back to its Stage-2 tree path (--index)",
    )
    explain.add_argument("rules", help="rules JSON")
    explain.add_argument(
        "--stack",
        default="inet",
        choices=["inet", "industrial", "zigbee", "ble"],
        help="header layout used to name byte offsets",
    )
    add_input(explain)
    explain.add_argument(
        "--index",
        type=int,
        default=None,
        help="replay this packet (by trace index) and print its decision "
        "provenance: tables consulted, matched entry, key bytes, rule, "
        "and distillation tree path",
    )
    explain.add_argument(
        "--table-capacity",
        type=int,
        default=None,
        help="firewall table capacity for the replay "
        "(default: fit the rule set, at least 4096)",
    )
    explain.set_defaults(func=cmd_explain)

    synth = sub.add_parser(
        "synth", help="generate a labelled synthetic trace to pcap + CSV"
    )
    synth.add_argument(
        "--stack", default="inet",
        choices=["inet", "industrial", "zigbee", "ble"],
    )
    synth.add_argument("--duration", type=float, default=40.0)
    synth.add_argument("--devices", type=int, default=3)
    synth.add_argument("--seed", type=int, default=7)
    synth.add_argument("--chatter", action="store_true")
    synth.add_argument("--pcap", required=True, help="output pcap path")
    synth.add_argument("--labels", help="output labels CSV path")
    synth.set_defaults(func=cmd_synth)

    cache = sub.add_parser(
        "cache", help="manage the on-disk dataset cache (REPRO_CACHE_DIR)"
    )
    cache.add_argument(
        "action",
        choices=["list", "clear", "warm"],
        help="list entries, delete them, or pre-generate the standard suite",
    )
    cache.add_argument("--duration", type=float, default=40.0)
    cache.add_argument("--devices", type=int, default=3)
    cache.add_argument("--window", type=int, default=64)
    cache.add_argument("--seed", type=int, default=7)
    cache.set_defaults(func=cmd_cache)

    p4 = sub.add_parser("p4", help="emit the P4-16 gateway program")
    p4.add_argument("rules", help="rules JSON")
    p4.add_argument("--out", required=True, help="output .p4 path")
    p4.add_argument(
        "--const-entries",
        action="store_true",
        help="compile the rules as const entries instead of runtime installs",
    )
    p4.add_argument("--table-size", type=int, default=4096)
    p4.set_defaults(func=cmd_p4)

    def add_table_capacity(p, default=None):
        p.add_argument(
            "--table-capacity",
            type=int,
            default=default,
            help="firewall table capacity in ternary entries "
            "(default: fit the rule set, at least 4096)",
        )

    simulate = sub.add_parser("simulate", help="replay traffic through the switch")
    simulate.add_argument("rules", help="rules JSON")
    add_input(simulate)
    simulate.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="replay through the vectorized batch path in chunks of this "
        "size (default: scalar reference path)",
    )
    add_table_capacity(simulate)
    simulate.set_defaults(func=cmd_simulate)

    evaluate = sub.add_parser("eval", help="score a rule set on labelled traffic")
    evaluate.add_argument("rules", help="rules JSON")
    add_input(evaluate)
    evaluate.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="evaluate through the vectorized batch path in chunks of "
        "this size (default: scalar reference path)",
    )
    add_table_capacity(evaluate)
    evaluate.set_defaults(func=cmd_eval)

    serve = sub.add_parser(
        "serve",
        help="run a timed streaming soak through the sharded gateway",
    )
    serve.add_argument(
        "rules", nargs="?", help="rules JSON (omit with --tenants)"
    )
    add_input(serve)
    serve.add_argument(
        "--tenants",
        help="multi-tenant fleet mode: JSON fleet spec naming each "
        "tenant's rule set (path or registry ref), band, quota and "
        "source prefix — see docs/OPERATIONS.md",
    )
    serve.add_argument(
        "--fleet-capacity",
        type=int,
        default=None,
        help="shared table budget in ternary entries (overrides the "
        "spec; default: fit every declared tenant)",
    )
    serve.add_argument(
        "--registry-root",
        default=None,
        help="detector registry directory for registry refs in the "
        "fleet spec",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=None,
        help="offered load in pkts/s (synthetic default 50000; a pcap "
        "keeps its capture clock unless set)",
    )
    serve.add_argument(
        "--packets",
        type=int,
        default=50_000,
        help="synthetic stream length (default 50000)",
    )
    serve.add_argument(
        "--burstiness",
        type=float,
        default=1.0,
        help="arrival burst factor; 1.0 = Poisson (default)",
    )
    serve.add_argument(
        "--loop",
        type=int,
        default=1,
        help="read the pcap this many times (requires --rate)",
    )
    serve.add_argument(
        "--shards", type=int, default=1, help="switch workers (default 1)"
    )
    serve.add_argument(
        "--executor",
        choices=["inline", "process"],
        default="inline",
        help="classification backend: in-process (default) or one worker "
        "process per shard over shared-memory frame rings",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker/shard count; overrides --shards (pairs with "
        "--executor process)",
    )
    serve.add_argument(
        "--ring-slots",
        type=int,
        default=8,
        help="frame/result ring depth per worker for --executor process "
        "(default 8)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=1024,
        help="adaptive batcher size trigger (default 1024)",
    )
    serve.add_argument(
        "--max-latency-ms",
        type=float,
        default=5.0,
        help="batcher deadline in milliseconds of stream time (default 5)",
    )
    serve.add_argument(
        "--queue-capacity",
        type=int,
        default=8192,
        help="per-shard bounded queue capacity in packets (default 8192)",
    )
    serve.add_argument(
        "--policy",
        choices=["fail-open", "fail-closed"],
        default="fail-closed",
        help="what happens to shed packets (default fail-closed)",
    )
    serve.add_argument(
        "--service-rate",
        type=float,
        default=None,
        help="per-shard service capacity in pkts/s of stream time "
        "(default: unconstrained — pure-throughput soak)",
    )
    serve.add_argument(
        "--hash-mode",
        choices=["bytes", "flow"],
        default="bytes",
        help="flow-to-shard hash (default: byte-region CRC)",
    )
    add_table_capacity(serve, default=4096)
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument(
        "--alerts",
        action="store_true",
        help="evaluate the default SLO alert rules (shed rate, drift, "
        "batcher-wait p99, table occupancy) periodically during the soak",
    )
    serve.add_argument(
        "--alert-shed-rate",
        type=float,
        default=0.01,
        help="shed-rate alert threshold as a fraction of offered packets "
        "(default 0.01)",
    )
    serve.add_argument(
        "--flight-dump",
        help="attach a decision flight recorder and write its records to "
        "this JSONL file (auto-dumped when an alert fires, and again at "
        "the end of the run)",
    )
    serve.add_argument(
        "--flight-capacity",
        type=int,
        default=65536,
        help="flight recorder ring capacity in records (default 65536)",
    )
    serve.add_argument(
        "--sample-rate",
        type=float,
        default=0.01,
        help="fraction of allow verdicts the flight recorder head-samples "
        "(drops/sheds are always kept; default 0.01)",
    )
    serve.add_argument(
        "--save", help="also write the telemetry snapshot to this JSONL file"
    )
    serve.add_argument(
        "--format",
        choices=["summary", "table", "jsonl", "prometheus"],
        default="summary",
        help="telemetry output beyond the soak summary (default: none)",
    )
    serve.set_defaults(func=cmd_serve)

    registry_p = sub.add_parser(
        "registry",
        help="manage the versioned train-once detector registry",
    )
    registry_p.add_argument(
        "--root",
        default=".registry",
        help="registry directory (default .registry)",
    )
    rsub = registry_p.add_subparsers(dest="registry_command", required=True)
    rtrain = rsub.add_parser(
        "train",
        help="train (or import with --from-rules) a new detector version",
    )
    rtrain.add_argument("device_class", help="device class / tenant name")
    rtrain.add_argument(
        "--from-rules",
        help="register an existing rules JSON instead of training",
    )
    rtrain.add_argument(
        "--stack",
        choices=["inet", "industrial", "zigbee", "ble"],
        default="inet",
        help="synthetic trace stack to train on (default inet)",
    )
    rtrain.add_argument("--duration", type=float, default=40.0,
                        help="trace duration in seconds (default 40)")
    rtrain.add_argument("--devices", type=int, default=3,
                        help="devices in the trace (default 3)")
    rtrain.add_argument("--window", type=int, default=64,
                        help="classification byte window (default 64)")
    rtrain.add_argument("--fields", type=int, default=6,
                        help="match fields to select (default 6)")
    rtrain.add_argument("--seed", type=int, default=0)
    rtrain.add_argument("--optimize", action="store_true",
                        help="run the rule-set optimiser before registering")
    rtrain.add_argument("--note", default="",
                        help="free-form annotation stored with the version")
    rtrain.set_defaults(func=cmd_registry)
    rlist = rsub.add_parser("list", help="list registered detector versions")
    rlist.add_argument("device_class", nargs="?",
                       help="restrict to one device class")
    rlist.set_defaults(func=cmd_registry)
    rshow = rsub.add_parser(
        "show", help="show one artifact (cls, cls@N, or cls@latest)"
    )
    rshow.add_argument("ref", help="registry reference")
    rshow.set_defaults(func=cmd_registry)
    rrm = rsub.add_parser(
        "rm", help="delete one version (cls@N) or a whole class (cls)"
    )
    rrm.add_argument("ref", help="registry reference")
    rrm.set_defaults(func=cmd_registry)

    corpus_p = sub.add_parser(
        "corpus",
        help="build, inspect and endurance-replay on-disk trace corpora",
    )
    csub = corpus_p.add_subparsers(dest="corpus_command", required=True)
    cbuild = csub.add_parser(
        "build",
        help="synthesize a chunked mixed attack/benign corpus to disk",
    )
    cbuild.add_argument("out", help="corpus output directory")
    cbuild.add_argument(
        "--packets",
        type=int,
        default=1_000_000,
        help="total corpus size in packets (default 1000000)",
    )
    cbuild.add_argument(
        "--chunk-packets",
        type=int,
        default=200_000,
        help="packets per chunk file (default 200000)",
    )
    cbuild.add_argument(
        "--stack",
        choices=["inet", "industrial", "zigbee", "ble"],
        default="inet",
        help="protocol stack for device and attack models (default inet)",
    )
    cbuild.add_argument(
        "--attack-fraction",
        type=float,
        default=0.5,
        help="fraction of packets drawn from attack families (default 0.5)",
    )
    cbuild.add_argument(
        "--families",
        default=None,
        help="comma-separated attack categories (default: every family "
        "registered for the stack)",
    )
    cbuild.add_argument(
        "--devices",
        type=int,
        default=4,
        help="benign devices per device model (default 4)",
    )
    cbuild.add_argument(
        "--rate",
        type=float,
        default=50_000.0,
        help="recorded arrival rate in pkts/s of stream time "
        "(default 50000)",
    )
    cbuild.add_argument(
        "--burstiness",
        type=float,
        default=4.0,
        help="arrival burst factor (default 4.0)",
    )
    cbuild.add_argument("--seed", type=int, default=7)
    cbuild.add_argument(
        "--compress",
        action="store_true",
        help="write gzip chunks (chunk-*.pcap.gz); digests stay those of "
        "the uncompressed bytes",
    )
    cbuild.add_argument(
        "--window",
        type=float,
        default=120.0,
        help="seconds of model time generated per pool refill; wider is "
        "faster but holds more packets in memory (default 120)",
    )
    cbuild.add_argument(
        "--attack-rate-scale",
        type=float,
        default=20.0,
        help="multiply each attack family's native packet rate "
        "(default 20)",
    )
    cbuild.add_argument(
        "--force",
        action="store_true",
        help="overwrite an existing corpus in the output directory",
    )
    cbuild.set_defaults(func=cmd_corpus)
    cinfo = csub.add_parser(
        "info", help="print a corpus manifest summary"
    )
    cinfo.add_argument("root", help="corpus directory or manifest.json")
    cinfo.add_argument(
        "--chunks",
        action="store_true",
        help="also list per-chunk packet counts, spans and class mixes",
    )
    cinfo.set_defaults(func=cmd_corpus)
    creplay = csub.add_parser(
        "replay",
        help="endurance-replay a corpus through the streaming gateway",
    )
    creplay.add_argument("root", help="corpus directory or manifest.json")
    creplay.add_argument(
        "rules",
        nargs="?",
        help="rules JSON (default: deterministic synthetic soak rule set)",
    )
    creplay.add_argument(
        "--rate",
        type=float,
        default=None,
        help="re-time to this offered load in pkts/s (default: corpus "
        "arrival clock)",
    )
    creplay.add_argument(
        "--burstiness",
        type=float,
        default=1.0,
        help="burst factor for --rate re-timing (default 1.0)",
    )
    creplay.add_argument(
        "--loop",
        type=int,
        default=1,
        help="replay the corpus this many times (requires --rate)",
    )
    creplay.add_argument(
        "--no-verify",
        action="store_true",
        help="skip in-flight sha256 digest verification",
    )
    creplay.add_argument(
        "--swap-after",
        type=int,
        default=None,
        help="fire one timed drift→retrain→swap after this many serviced "
        "packets",
    )
    creplay.add_argument(
        "--shards", type=int, default=1, help="switch workers (default 1)"
    )
    creplay.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker/shard count; overrides --shards (pairs with "
        "--executor process)",
    )
    creplay.add_argument(
        "--executor",
        choices=["inline", "process"],
        default="inline",
        help="classification backend (default inline)",
    )
    creplay.add_argument(
        "--max-batch",
        type=int,
        default=1024,
        help="adaptive batcher size trigger (default 1024)",
    )
    creplay.add_argument(
        "--max-latency-ms",
        type=float,
        default=5.0,
        help="batcher deadline in milliseconds of stream time (default 5)",
    )
    creplay.add_argument(
        "--queue-capacity",
        type=int,
        default=8192,
        help="per-shard bounded queue capacity in packets (default 8192)",
    )
    creplay.add_argument(
        "--policy",
        choices=["fail-open", "fail-closed"],
        default="fail-closed",
        help="what happens to shed packets (default fail-closed)",
    )
    creplay.add_argument(
        "--service-rate",
        type=float,
        default=None,
        help="per-shard service capacity in pkts/s of stream time "
        "(default: unconstrained)",
    )
    add_table_capacity(creplay, default=4096)
    creplay.add_argument("--seed", type=int, default=0)
    creplay.add_argument(
        "--save", help="also write the telemetry snapshot to this JSONL file"
    )
    creplay.add_argument(
        "--format",
        choices=["summary", "table", "jsonl", "prometheus"],
        default="summary",
        help="telemetry output beyond the replay summary (default: none)",
    )
    creplay.set_defaults(func=cmd_corpus)

    stats = sub.add_parser(
        "stats",
        help="replay with observability on and dump the metric registry",
    )
    stats.add_argument("rules", nargs="?", help="rules JSON")
    add_input(stats)
    stats.add_argument(
        "--batch-size",
        type=int,
        default=1024,
        help="vectorized replay chunk size (default 1024)",
    )
    add_table_capacity(stats, default=4096)
    stats.add_argument(
        "--snapshot",
        help="render a previously saved JSONL snapshot instead of replaying",
    )
    stats.add_argument(
        "--save", help="also write the snapshot to this JSONL file"
    )
    stats.add_argument(
        "--format",
        choices=["table", "jsonl", "prometheus"],
        default="table",
        help="output format (default: aligned table)",
    )
    stats.set_defaults(func=cmd_stats)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
