"""E18 (extension) — worker-count saturation sweep for parallel serving.

The process-parallel backend moves per-shard classification out of the
gateway event loop into worker processes fed over shared-memory frame
rings, so aggregate throughput can scale past one core.  We soak the
same retimed stream through the inline backend and through 1/2/4/8
process workers and report aggregate pkt/s, the speedup over inline,
and the p99 batch service time — the saturation curve should climb
until workers exceed usable cores, then flatten.

On a single-core host the honest curve is flat-to-negative (every IPC
hop is pure overhead with no parallel hardware to pay for it); the
assertions therefore gate correctness (exact accounting, identical
verdict totals across backends) unconditionally and reserve the
speedup gate for hosts with ≥ 4 usable cores.  Timed section: the soak
at the widest worker count.
"""

import os

from repro.eval.harness import synthetic_firewall_ruleset
from repro.eval.report import format_table
from repro.serve import ServeConfig, StreamingGateway, retime

WORKER_COUNTS = [1, 2, 4, 8]
N_PACKETS = 30_000
MAX_LATENCY = 0.005


def _usable_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _stream_packets(dataset):
    packets = sorted(dataset.test_packets, key=lambda p: p.timestamp)
    return (packets * (N_PACKETS // len(packets) + 1))[:N_PACKETS]


def test_e18_worker_saturation_sweep(benchmark, inet):
    packets = _stream_packets(inet)
    # Classification-bound: a wide uncompiled rule set (~1.2k ternary
    # entries) so workers have real per-batch work and the ring hop is
    # a small fraction.
    rules = synthetic_firewall_ruleset(n_rules=64, fields_per_rule=2)
    stream = list(retime(packets, rate=1_000_000.0, seed=1))

    def soak(executor: str, n_shards: int):
        gateway = StreamingGateway(
            rules,
            ServeConfig(
                n_shards=n_shards,
                max_batch=512,
                max_latency=MAX_LATENCY,
                queue_capacity=8192,
                record_verdicts=False,
                compiled=False,
                executor=executor,
            ),
        )
        best = None
        for _ in range(2):  # best-of-2: first run pays warmup
            result = gateway.run(stream)
            if best is None or result.wall_seconds < best.wall_seconds:
                best = result
        return best

    inline = soak("inline", 1)
    rows = [{
        "backend": "inline",
        "workers": 1,
        "pkts_per_sec": round(inline.pkts_per_sec),
        "speedup": 1.0,
        "p99_batch_ms": round(1e3 * inline.batch_seconds_p99, 3),
    }]
    outcomes = {}
    for workers in WORKER_COUNTS:
        result = soak("process", workers)
        outcomes[workers] = result
        rows.append({
            "backend": "process",
            "workers": workers,
            "pkts_per_sec": round(result.pkts_per_sec),
            "speedup": round(result.pkts_per_sec / inline.pkts_per_sec, 2),
            "p99_batch_ms": round(1e3 * result.batch_seconds_p99, 3),
        })

    print()
    print(format_table(
        rows,
        title=f"E18: worker saturation sweep ({_usable_cores()} usable cores)",
    ))

    # Correctness gates hold on any host: exact accounting, no worker
    # deaths, and backend-identical verdict totals.
    for workers, result in outcomes.items():
        assert result.offered == result.processed + result.shed
        assert result.worker_failures == 0
        assert result.stats.received == inline.stats.received
        assert result.stats.dropped == inline.stats.dropped
        assert result.stats.allowed == inline.stats.allowed

    # The speedup gate needs real parallel hardware.
    if _usable_cores() >= 4:
        assert outcomes[4].pkts_per_sec >= 2.5 * inline.pkts_per_sec

    widest = WORKER_COUNTS[-1]
    gateway = StreamingGateway(
        rules,
        ServeConfig(
            n_shards=widest,
            max_batch=512,
            max_latency=MAX_LATENCY,
            queue_capacity=8192,
            record_verdicts=False,
            compiled=False,
            executor="process",
        ),
    )

    def run():
        return gateway.run(stream)

    benchmark(run)
