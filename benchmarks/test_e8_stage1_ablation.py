"""E8 — Stage-1 ablation: learned gates vs MI vs saliency.

Regenerates: accuracy at a fixed field budget for the three selectors, per
dataset.  Expected shape: the learned gate selector is competitive with or
better than the filter/saliency baselines at small k.  Timed section: one
gate-selector fit.
"""

from repro.core import DetectorConfig, TwoStageDetector
from repro.core.stage1 import GateSelector
from repro.eval.report import format_table

SELECTORS = ("gate", "mi", "saliency")


def test_e8_selector_ablation(benchmark, suite):
    rows = []
    best_by_dataset = {}
    for name, dataset in suite.items():
        for kind in SELECTORS:
            detector = TwoStageDetector(
                DetectorConfig(
                    n_fields=4, selector=kind,
                    selector_epochs=20, epochs=40, seed=3,
                )
            )
            detector.fit(dataset.x_train, dataset.y_train_binary)
            accuracy = detector.rule_accuracy(
                dataset.x_test, dataset.y_test_binary
            )
            rows.append(
                {
                    "trace": name,
                    "selector": kind,
                    "offsets": str(list(detector.offsets)),
                    "accuracy": round(accuracy, 4),
                }
            )
            best_by_dataset.setdefault(name, {})[kind] = accuracy
    print()
    print(format_table(rows, title="E8: Stage-1 selector ablation (k=4)"))

    for name, scores in best_by_dataset.items():
        # the learned selector must be competitive: within 5 points of the
        # best alternative on every trace
        assert scores["gate"] >= max(scores.values()) - 0.05, (name, scores)

    dataset = suite["inet"]

    def fit_gate():
        selector = GateSelector(
            dataset.extractor.n_bytes, epochs=15, seed=3
        )
        selector.fit(dataset.x_train, dataset.y_train_binary)
        return selector

    selector = benchmark.pedantic(fit_gate, rounds=1, iterations=1)
    assert selector.scores().shape[0] == dataset.extractor.n_bytes


def test_e8b_gate_ensemble_ablation(benchmark, suite):
    """E8b — why the gate selector ensembles its runs.

    Single gate trainings land in different local optima per seed; the
    3-run score average stabilises the downstream accuracy.  Reported as
    worst-seed accuracy over 4 seeds at k=6.
    """
    from repro.core.stage2 import CompactClassifier
    import numpy as np

    dataset = suite["inet"]
    rows = []
    worst = {}
    for n_runs in (1, 3):
        accuracies = []
        for seed in range(4):
            selector = GateSelector(
                dataset.extractor.n_bytes, epochs=15, n_runs=n_runs, seed=seed
            )
            selector.fit(dataset.x_train, dataset.y_train_binary)
            offsets = selector.select(6)
            clf = CompactClassifier(offsets, epochs=40, seed=seed)
            clf.fit(dataset.x_train, dataset.y_train_binary)
            accuracies.append(
                clf.accuracy(dataset.x_test, dataset.y_test_binary)
            )
        worst[n_runs] = min(accuracies)
        rows.append(
            {
                "n_runs": n_runs,
                "mean_acc": round(float(np.mean(accuracies)), 4),
                "worst_acc": round(min(accuracies), 4),
                "spread": round(max(accuracies) - min(accuracies), 4),
            }
        )
    print()
    print(format_table(rows, title="E8b: gate-ensemble ablation (4 seeds, k=6)"))
    assert worst[3] >= worst[1] - 0.01  # ensembling never hurts the floor

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
