"""E17 (extension) — the streaming gateway under offered-load sweep.

The serving story for the learned firewall: packets arrive as a stream,
an adaptive batcher feeds the switch's vectorised path, bounded per-shard
queues apply backpressure.  We sweep the offered load across a fixed
service capacity and report throughput, stream-time latency percentiles
and the shed fraction — the classic load/latency/loss triptych.  Below
saturation the gateway holds latency near the batcher deadline with no
loss; past saturation it sheds the excess with exact drop accounting
instead of collapsing.

Acceptance (also asserted in tests/test_serve.py): the unconstrained
soak sustains ≥ 80% of the offline ``process_batch`` replay throughput at
batch 1024, and the batcher wait stays under the configured deadline.
Timed section: the full soak at the acceptance configuration.
"""

import time

from repro.eval.harness import replay_gateway, synthetic_firewall_ruleset
from repro.eval.report import format_table
from repro.serve import ServeConfig, StreamingGateway, retime

#: Per-shard service capacity for the sweep (pkts/s of stream time).
SERVICE_RATE = 25_000.0
#: Offered loads as multiples of the service capacity.
LOAD_FACTORS = [0.5, 0.9, 1.2, 2.0, 4.0]
MAX_LATENCY = 0.005
N_PACKETS = 30_000


def _stream_packets(dataset):
    packets = sorted(dataset.test_packets, key=lambda p: p.timestamp)
    return (packets * (N_PACKETS // len(packets) + 1))[:N_PACKETS]


def test_e17_serve_load_sweep(benchmark, inet):
    packets = _stream_packets(inet)
    rules = synthetic_firewall_ruleset()

    # Offline baseline: one-shot batch replay at the soak batch size.
    replay_gateway(rules, packets[:2048], batch_size=1024)  # warm
    start = time.perf_counter()
    replay_gateway(rules, packets, batch_size=1024)
    offline_pps = len(packets) / (time.perf_counter() - start)

    rows = []
    outcomes = {}
    for factor in LOAD_FACTORS:
        offered_rate = factor * SERVICE_RATE
        stream = list(retime(packets, rate=offered_rate, seed=int(10 * factor)))
        gateway = StreamingGateway(
            rules,
            ServeConfig(
                max_batch=1024,
                max_latency=MAX_LATENCY,
                queue_capacity=4096,
                service_rate=SERVICE_RATE,
                record_verdicts=False,
            ),
        )
        result = gateway.run(stream)
        assert result.offered == result.processed + result.shed == len(stream)
        outcomes[factor] = result
        rows.append(
            {
                "load": f"{factor:.1f}x",
                "offered_pps": round(result.offered_rate),
                "latency_p50_ms": round(1e3 * result.latency_p50, 3),
                "latency_p99_ms": round(1e3 * result.latency_p99, 3),
                "shed_fraction": round(result.shed_fraction, 4),
            }
        )

    # Unconstrained soak: the wall-clock throughput number vs. offline.
    soak_stream = list(retime(packets, rate=500_000.0, seed=1))
    soak_gateway = StreamingGateway(
        rules,
        ServeConfig(
            max_batch=1024, max_latency=MAX_LATENCY, record_verdicts=False
        ),
    )
    soak_gateway.run(soak_stream)  # warm
    soak = soak_gateway.run(soak_stream)
    rows.append(
        {
            "load": "soak",
            "offered_pps": round(soak.offered_rate),
            "latency_p50_ms": round(1e3 * soak.latency_p50, 3),
            "latency_p99_ms": round(1e3 * soak.latency_p99, 3),
            "shed_fraction": round(soak.shed_fraction, 4),
        }
    )
    print()
    print(format_table(rows, title="E17: streaming gateway vs offered load"))
    print(
        f"  soak {soak.pkts_per_sec:,.0f} pkts/s wall "
        f"vs offline replay {offline_pps:,.0f} pkts/s "
        f"({soak.pkts_per_sec / offline_pps:.2f}x)"
    )

    # Shape: no loss below saturation; monotone shedding above it, and the
    # overloaded latency stays bounded by queue + deadline (no collapse).
    assert outcomes[0.5].shed == 0 and outcomes[0.9].shed == 0
    assert outcomes[2.0].shed_fraction > 0.2
    assert outcomes[4.0].shed_fraction > outcomes[2.0].shed_fraction
    assert outcomes[0.9].latency_p99 >= outcomes[0.5].latency_p99
    bound = 4096 / SERVICE_RATE + MAX_LATENCY + 0.1
    assert outcomes[4.0].latency_p99 <= bound
    # Acceptance: streaming overhead under 20% of the offline replay.
    assert soak.pkts_per_sec >= 0.8 * offline_pps
    assert soak.batcher_wait_p99 <= MAX_LATENCY + 1e-9

    def run():
        return soak_gateway.run(soak_stream)

    benchmark(run)
