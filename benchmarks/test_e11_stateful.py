"""E11 (extension) — learned stateless rules vs. in-switch rate limiting.

Ablates the two data-plane defense styles the literature combines:

* **heavy-hitter (src key)** — per-source rate thresholding; evaded
  outright by spoofed-source floods (fresh key per packet),
* **heavy-hitter (dst key)** — per-victim thresholding; catches flood
  *volume* but cannot tell attack packets from benign ones in the same
  window (high FPR),
* **two-stage rules** — the paper's method: per-packet byte patterns,
* **combined** — rate stage in front of the learned table (defense in
  depth; the rate stage is the cheap first line, registers only).

Expected shape: learned rules dominate both rate-only variants on F1; the
combined gateway keeps the rules' accuracy.  Timed section: combined
gateway replay.
"""

import numpy as np

from repro.baselines import HeavyHitterDetector
from repro.dataplane import GatewayController
from repro.dataplane.stateful import RateLimitStage, StatefulGateway, dest_key_inet
from repro.eval.metrics import binary_metrics
from repro.eval.report import format_table

from _common import x_test_bytes


def test_e11_stateful_ablation(benchmark, suite, detectors):
    dataset = suite["inet"]
    truth = dataset.y_test_binary
    replay = sorted(dataset.test_packets, key=lambda p: p.timestamp)
    replay_truth = np.array([1 if p.label.is_attack else 0 for p in replay])

    rows = []

    def add_row(name, predictions, truth_vector):
        metrics = binary_metrics(truth_vector, predictions)
        rows.append(
            {
                "defense": name,
                "accuracy": round(metrics.accuracy, 4),
                "recall": round(metrics.recall, 4),
                "fpr": round(metrics.false_positive_rate, 4),
                "f1": round(metrics.f1, 4),
            }
        )
        return metrics

    hh_src = HeavyHitterDetector(threshold=10, key="src")
    src_metrics = add_row(
        "heavy-hitter (src)", hh_src.predict_packets(dataset.test_packets), truth
    )
    hh_dst = HeavyHitterDetector(threshold=10, key="dst")
    dst_metrics = add_row(
        "heavy-hitter (dst)", hh_dst.predict_packets(dataset.test_packets), truth
    )

    rules = detectors["inet"].generate_rules()
    rule_metrics = add_row(
        "two-stage rules", rules.predict(x_test_bytes(dataset)), truth
    )

    controller = GatewayController.for_ruleset(rules)
    controller.deploy(rules)
    stage = RateLimitStage(threshold=30, window=1.0, key_fn=dest_key_inet)
    gateway = StatefulGateway(stage, controller)
    verdicts = gateway.process_trace(replay)
    combined_pred = np.array([1 if v.dropped else 0 for v in verdicts])
    combined_metrics = add_row("combined (rate + rules)", combined_pred, replay_truth)

    print()
    print(format_table(rows, title="E11: stateless rules vs in-switch rate limiting"))
    print(f"rate stage alone dropped {stage.stats.dropped} packets "
          f"across {stage.stats.windows + 1} windows")

    # shapes
    assert src_metrics.recall < 0.1          # spoofing evades per-source
    assert dst_metrics.false_positive_rate > rule_metrics.false_positive_rate
    assert rule_metrics.f1 > max(src_metrics.f1, dst_metrics.f1)
    assert combined_metrics.recall >= rule_metrics.recall - 0.02
    assert combined_metrics.f1 > dst_metrics.f1

    def run_combined():
        controller.switch.reset_stats()
        return gateway.process_trace(replay)

    benchmark(run_combined)
