"""E4 — Rule-table size vs. accuracy trade-off (+ P4-friendly ablation).

Regenerates: sweeping the distillation depth trades rule count against
accuracy; accuracy saturates while rules keep growing.  Also ablates the
threshold-snapping ("tailored to P4") optimisation: same accuracy, far
fewer TCAM entries.  Timed section: one distillation + rule generation.
"""

import numpy as np

from repro.core import DetectorConfig, TwoStageDetector
from repro.eval.report import format_table

from _common import x_test_bytes

DEPTHS = [1, 2, 3, 4, 6, 8, 10]


def test_e4_depth_sweep(benchmark, suite, detectors):
    dataset = suite["inet"]
    detector = detectors["inet"]
    rows = []
    for depth in DEPTHS:
        rules = detector.generate_rules(max_depth=depth)
        report = rules.resource_report()
        accuracy = (
            rules.predict(x_test_bytes(dataset)) == dataset.y_test_binary
        ).mean()
        rows.append(
            {
                "distill_depth": depth,
                "rules": report["rules"],
                "ternary_entries": report["ternary_entries"],
                "tcam_bits": report["tcam_bits"],
                "accuracy": round(float(accuracy), 4),
            }
        )
    print()
    print(format_table(rows, title="E4: rule count vs accuracy (inet)"))
    # shape: rules grow with depth, accuracy saturates
    assert rows[-1]["rules"] >= rows[0]["rules"]
    assert max(r["accuracy"] for r in rows[3:]) >= rows[0]["accuracy"]
    best = max(r["accuracy"] for r in rows)
    assert rows[-1]["accuracy"] >= best - 0.03

    benchmark.pedantic(
        detector.generate_rules, kwargs={"max_depth": 6}, rounds=1, iterations=1
    )


def test_e4_snapping_ablation(benchmark, suite):
    dataset = suite["inet"]
    rows = []
    last_detector = None
    for friendly in (False, True):
        detector = TwoStageDetector(
            DetectorConfig(
                n_fields=6, selector_epochs=20, epochs=40, seed=3,
                p4_friendly=friendly,
            )
        )
        detector.fit(dataset.x_train, dataset.y_train_binary)
        last_detector = detector
        rules = detector.generate_rules()
        report = rules.resource_report()
        accuracy = (
            rules.predict(x_test_bytes(dataset)) == dataset.y_test_binary
        ).mean()
        rows.append(
            {
                "p4_friendly": str(friendly),
                "rules": report["rules"],
                "ternary_entries": report["ternary_entries"],
                "tcam_bits": report["tcam_bits"],
                "accuracy": round(float(accuracy), 4),
            }
        )
    print()
    print(format_table(rows, title="E4b: threshold-snapping ablation"))
    plain, snapped = rows
    assert snapped["ternary_entries"] < plain["ternary_entries"]
    assert snapped["accuracy"] >= plain["accuracy"] - 0.03

    # E4c: post-hoc rule-set optimisation (semantics-preserving).
    from repro.core import optimize_ruleset

    rules = last_detector.generate_rules()
    optimized, opt_report = optimize_ruleset(rules)
    print(f"E4c: rule optimisation — {opt_report}")
    assert opt_report.rules_after <= opt_report.rules_before
    opt_accuracy = (
        optimized.predict(x_test_bytes(dataset)) == dataset.y_test_binary
    ).mean()
    base_accuracy = (
        rules.predict(x_test_bytes(dataset)) == dataset.y_test_binary
    ).mean()
    assert opt_accuracy == base_accuracy  # exactly semantics-preserving

    benchmark.pedantic(
        last_detector.distill, rounds=1, iterations=1
    )
