"""E15 (extension) — detector-design comparison: per-packet bytes vs
flow statistics vs unsupervised anomaly detection.

Completes the related-work comparison the paper's introduction sketches:

* **flow-stats IDS** — accurate, but needs per-flow *state* (spoofed
  floods force ~one flow per packet) and pays a *decision latency* on
  long flows (first packets pass before the flow can be judged);
* **autoencoder** — needs no attack labels at all, but its scores cannot
  be compiled into match-action rules and its recall trails supervised
  training;
* **two-stage rules** — per-packet, stateless, rule-compilable.

Expected shape: two-stage ≥ both on F1; flow-stats shows the state blowup
and non-zero latency on the long-flow (Zigbee) trace; the autoencoder is
competitive on recall only at a higher FPR budget.  Timed section:
flow-stats prediction (the stateful path).
"""

import numpy as np

from repro.baselines import AutoencoderDetector, FlowStatsDetector
from repro.eval.metrics import binary_metrics
from repro.eval.report import format_table

from _common import x_test_bytes


def test_e15_design_comparison(benchmark, suite, detectors):
    rows = []

    # -- inet: all three designs --------------------------------------------
    dataset = suite["inet"]
    truth = dataset.y_test_binary

    rules = detectors["inet"].generate_rules()
    rule_metrics = binary_metrics(truth, rules.predict(x_test_bytes(dataset)))
    rows.append(
        {"trace": "inet", "design": "two-stage rules",
         "f1": round(rule_metrics.f1, 4),
         "recall": round(rule_metrics.recall, 4),
         "fpr": round(rule_metrics.false_positive_rate, 4),
         "state": f"{len(rules)} rules", "latency_pkts": 0.0}
    )

    flow_detector = FlowStatsDetector(decision_packets=5)
    flow_detector.fit_packets(dataset.train_packets)
    flow_result = flow_detector.predict_packets(dataset.test_packets)
    flow_metrics = binary_metrics(truth, flow_result.predictions)
    rows.append(
        {"trace": "inet", "design": "flow-stats IDS",
         "f1": round(flow_metrics.f1, 4),
         "recall": round(flow_metrics.recall, 4),
         "fpr": round(flow_metrics.false_positive_rate, 4),
         "state": f"{flow_result.flow_count} flows",
         "latency_pkts": round(flow_result.attack_latency_packets, 2)}
    )

    benign_train = dataset.x_train[dataset.y_train_binary == 0]
    ae = AutoencoderDetector(
        dataset.extractor.n_bytes, epochs=30, seed=0
    ).fit(benign_train)
    ae_metrics = binary_metrics(truth, ae.predict(dataset.x_test))
    rows.append(
        {"trace": "inet", "design": "autoencoder (no labels)",
         "f1": round(ae_metrics.f1, 4),
         "recall": round(ae_metrics.recall, 4),
         "fpr": round(ae_metrics.false_positive_rate, 4),
         "state": "model only", "latency_pkts": 0.0}
    )

    # -- zigbee: long attack flow → flow-stats latency becomes visible ------
    zigbee = suite["zigbee"]
    z_rules = detectors["zigbee"].generate_rules()
    z_rule_metrics = binary_metrics(
        zigbee.y_test_binary, z_rules.predict(x_test_bytes(zigbee))
    )
    rows.append(
        {"trace": "zigbee", "design": "two-stage rules",
         "f1": round(z_rule_metrics.f1, 4),
         "recall": round(z_rule_metrics.recall, 4),
         "fpr": round(z_rule_metrics.false_positive_rate, 4),
         "state": f"{len(z_rules)} rules", "latency_pkts": 0.0}
    )
    # min_samples_leaf=1: the whole trace yields only ~5 flows (the storm
    # is ONE training flow) — flow-level learning cannot afford leaf floors
    # here, itself a data-efficiency finding vs per-packet learning.
    z_flow = FlowStatsDetector(
        decision_packets=6, stack="zigbee", min_samples_leaf=1
    )
    z_flow.fit_packets(zigbee.train_packets)
    z_result = z_flow.predict_packets(zigbee.test_packets)
    z_flow_metrics = binary_metrics(zigbee.y_test_binary, z_result.predictions)
    rows.append(
        {"trace": "zigbee", "design": "flow-stats IDS",
         "f1": round(z_flow_metrics.f1, 4),
         "recall": round(z_flow_metrics.recall, 4),
         "fpr": round(z_flow_metrics.false_positive_rate, 4),
         "state": f"{z_result.flow_count} flows",
         "latency_pkts": round(z_result.attack_latency_packets, 2)}
    )

    print()
    print(format_table(rows, title="E15: detector designs"))

    # shapes
    assert rule_metrics.f1 >= flow_metrics.f1 - 0.03
    assert rule_metrics.f1 > ae_metrics.f1
    attack_packets = int(truth.sum())
    assert flow_result.flow_count > attack_packets // 2  # state blowup
    assert z_result.attack_latency_packets >= 3          # long-flow latency
    assert z_rule_metrics.recall >= z_flow_metrics.recall

    benchmark(flow_detector.predict_packets, dataset.test_packets)
