"""E3 — Accuracy vs. number of selected fields k (the efficiency figure).

Regenerates: the accuracy-vs-k curve per dataset.  Expected shape:
monotone-increasing (within noise) and saturating — a small k suffices,
which is the paper's core efficiency claim.  Timed section: one Stage-2
fit at k=6.
"""

import numpy as np

from repro.core import DetectorConfig, TwoStageDetector
from repro.core.stage2 import CompactClassifier
from repro.eval.report import format_series

K_VALUES = [1, 2, 4, 6, 8, 12, 16]


def test_e3_accuracy_vs_fields(benchmark, suite):
    series = {}
    for name, dataset in suite.items():
        accuracies = []
        for k in K_VALUES:
            detector = TwoStageDetector(
                DetectorConfig(
                    n_fields=k, selector_epochs=20, epochs=40, seed=3
                )
            )
            detector.fit(dataset.x_train, dataset.y_train_binary)
            accuracies.append(
                round(
                    detector.rule_accuracy(
                        dataset.x_test, dataset.y_test_binary
                    ),
                    4,
                )
            )
        series[name] = accuracies
    print()
    print(
        format_series(
            K_VALUES, series, x_name="k_fields",
            title="E3: rule accuracy vs selected fields",
        )
    )
    for name, accuracies in series.items():
        # saturating shape: the best large-k accuracy beats k=1, and the
        # curve's tail is within noise of its maximum
        assert max(accuracies[3:]) >= accuracies[0]
        assert accuracies[-1] >= max(accuracies) - 0.05

    dataset = suite["inet"]
    detector = TwoStageDetector(
        DetectorConfig(n_fields=6, selector_epochs=20, epochs=40, seed=3)
    )
    detector.fit(dataset.x_train, dataset.y_train_binary)

    def stage2_fit():
        clf = CompactClassifier(detector.offsets, epochs=25, seed=3)
        clf.fit(dataset.x_train, dataset.y_train_binary)
        return clf

    benchmark.pedantic(stage2_fit, rounds=1, iterations=1)
