"""E19 (extension) — multi-tenant fleet packing: tenant count vs capacity.

A fleet gateway serves many device classes (tenants) from one packet
stream under one shared ternary-entry budget.  We sweep tenant count
and budget and measure what capacity pressure actually costs:

* **installed / evicted entries** — the capacity controller's packing
  outcome (band-ordered displacement, whole rule sets only);
* **verdict fidelity** — fraction of offered packets whose verdict
  matches a fully-provisioned oracle fleet (same tenants, budget =
  total demand).  Installed tenants are bit-identical to the oracle by
  construction, so fidelity loss is exactly the fail-closed shedding
  of evicted tenants' traffic — the accuracy price of an undersized
  table;
* **throughput** — offered pkt/s over the whole fleet soak.

Assertions gate the ledger invariant (per tenant,
``offered == installed + evicted`` entries), oracle bit-identity for
every installed tenant, and perfect fidelity at full budget.  Timed
section: the widest fleet at full budget.
"""

import dataclasses

from repro.eval.harness import synthetic_firewall_ruleset
from repro.eval.report import format_table
from repro.fleet import FleetGateway, TenantSpec
from repro.serve import ServeConfig, retime

TENANT_COUNTS = [2, 4, 8]
BUDGET_FRACTIONS = [0.4, 0.7, 1.0]
N_PACKETS = 6_000


def _tenant_specs(n: int):
    """``n`` tenants with varied rule-set sizes, bands, and prefixes."""
    specs = []
    for i in range(n):
        rules = synthetic_firewall_ruleset(
            n_rules=24 + 8 * i, fields_per_rule=2, seed=100 + i
        )
        specs.append(
            TenantSpec(
                name=f"class{i}",
                rules=rules,
                band=i % 3,
                src_prefix=f"10.{i}.0.0/16",
            )
        )
    return specs


def _routed_stream(dataset, n_tenants: int):
    """The inet test trace, sources rewritten round-robin into tenant
    prefixes (non-IP frames are left alone and stay unrouted — equally
    so in the oracle, so fidelity is unaffected)."""
    packets = sorted(dataset.test_packets, key=lambda p: p.timestamp)
    packets = (packets * (N_PACKETS // len(packets) + 1))[:N_PACKETS]
    rewritten = []
    for idx, packet in enumerate(packets):
        data = packet.data
        if len(data) >= 30 and data[12:14] == b"\x08\x00":
            tenant = idx % n_tenants
            data = data[:26] + bytes([10, tenant]) + data[28:]
            packet = dataclasses.replace(packet, data=data)
        rewritten.append(packet)
    return list(retime(rewritten, rate=500_000.0, seed=19))


def test_e19_fleet_capacity_sweep(benchmark, inet):
    config = ServeConfig(
        n_shards=1,
        max_batch=256,
        max_latency=0.005,
        queue_capacity=65_536,
        record_verdicts=True,
        compiled=False,
    )

    rows = []
    widest = None
    for n_tenants in TENANT_COUNTS:
        specs = _tenant_specs(n_tenants)
        demand = sum(spec.cost() for spec in specs)
        stream = _routed_stream(inet, n_tenants)

        oracle = FleetGateway(specs, config, capacity=demand).run(stream)
        assert all(r.admitted for r in oracle.admissions.values())
        oracle_actions = [v.action for v in oracle.verdicts]

        for fraction in BUDGET_FRACTIONS:
            budget = max(1, int(demand * fraction))
            fleet = FleetGateway(specs, config, capacity=budget)
            result = fleet.run(stream)

            # Ledger invariant: every offered entry is installed or
            # evicted with a reason — nothing leaks.
            for name, account in result.accounts.items():
                assert account.balanced, f"{name}: unbalanced ledger"

            # Installed tenants are bit-identical to the oracle run.
            for name, solo in result.per_tenant.items():
                twin = oracle.per_tenant[name]
                assert solo.stats == twin.stats, f"{name}: stats diverged"
                assert solo.verdicts == twin.verdicts

            matches = sum(
                ours.action == oracle_action
                for ours, oracle_action in zip(result.verdicts, oracle_actions)
            )
            fidelity = matches / result.offered
            installed = sum(
                1 for a in result.accounts.values() if a.installed > 0
            )
            evicted = sum(a.evicted for a in result.accounts.values())
            if fraction == 1.0:
                assert fidelity == 1.0
                assert evicted == 0
            rows.append({
                "tenants": n_tenants,
                "budget": budget,
                "demand": demand,
                "installed": f"{installed}/{n_tenants}",
                "evicted_entries": evicted,
                "fidelity": round(fidelity, 4),
                "pkts_per_sec": round(result.offered / result.wall_seconds),
            })
        widest = (specs, demand, stream)

    print()
    print(format_table(
        rows,
        title="E19: fleet packing — tenant count vs shared table budget",
    ))

    specs, demand, stream = widest
    gateway = FleetGateway(specs, config, capacity=demand)

    def run():
        return gateway.run(stream)

    benchmark(run)
