"""E20 (extension) — on-disk corpus endurance: replay, shed, memory, swap.

The endurance story for the learned firewall: the in-memory soaks (E17–
E19) top out at what fits in a Python list, so E20 moves the workload to
disk.  A multi-chunk mixed attack/benign corpus is synthesized through
the column fast path (recording build throughput), then endurance-
replayed through the streaming gateway with sha256 digests verified in
flight.  Four claims are exercised:

* **throughput** — streaming from disk with verification sustains
  ≥ 0.9x the identical in-memory soak (the disk+hash tax is bounded);
* **shed under overload** — a constrained service rate sheds the excess
  with exact ``offered == processed + shed`` accounting, same as E17;
* **memory ceiling** — RSS growth over the replay stays far below the
  corpus size (one record resident at a time, not a chunk);
* **drift→retrain→swap** — a mid-replay retrain hook swaps rules while
  traffic flows, on both the inline and process executors, and the
  retrain + install latency is measured, not guessed.

Timed section: the verified endurance replay at the acceptance
configuration.
"""

import time

from repro.corpus import CorpusSource, CorpusSpec, build_corpus, replay_corpus
from repro.eval.harness import synthetic_firewall_ruleset
from repro.eval.report import format_table
from repro.serve import ServeConfig, StreamingGateway

#: Corpus scale: multi-chunk but benchmark-sized; the 2M-packet
#: acceptance build is the same code path at more chunks.
N_PACKETS = 300_000
CHUNK_PACKETS = 75_000
#: Per-shard service capacity for the overload leg (pkts/s stream time).
SERVICE_RATE = 25_000.0
MAX_LATENCY = 0.005


def _config(**overrides):
    kwargs = dict(
        max_batch=1024,
        max_latency=MAX_LATENCY,
        record_verdicts=False,
    )
    kwargs.update(overrides)
    return ServeConfig(**kwargs)


def test_e20_corpus_endurance(benchmark, tmp_path_factory):
    root = tmp_path_factory.mktemp("e20") / "corpus"
    spec = CorpusSpec(
        n_packets=N_PACKETS, chunk_packets=CHUNK_PACKETS, seed=23
    )
    rules = synthetic_firewall_ruleset(seed=23)

    # --- build: column fast path, chunk-at-a-time ---------------------
    build_corpus(CorpusSpec(n_packets=20_000, chunk_packets=20_000, seed=1),
                 root.parent / "warm")  # warm numpy/model code paths
    start = time.perf_counter()
    manifest = build_corpus(spec, root)
    build_pps = manifest.packets / (time.perf_counter() - start)
    assert manifest.packets == N_PACKETS
    assert len(manifest.chunks) == N_PACKETS // CHUNK_PACKETS

    # --- in-memory baseline vs verified endurance replay --------------
    # the ratio is the claim, and single runs on a shared machine are
    # noisy: pair each replay with an immediately-preceding baseline run
    # (adjacent runs share machine conditions), and score the best round
    packets = list(CorpusSource(root, verify=False))
    baseline_gateway = StreamingGateway(rules, _config())
    baseline_gateway.run(packets[:20_000])  # warm
    baseline = report = None
    ratios = []
    for __ in range(3):
        b = baseline_gateway.run(packets)
        r = replay_corpus(root, rules, _config())
        ratios.append(r.result.pkts_per_sec / b.pkts_per_sec)
        if baseline is None or b.pkts_per_sec > baseline.pkts_per_sec:
            baseline = b
        if report is None or r.result.pkts_per_sec > report.result.pkts_per_sec:
            report = r
    result = report.result
    assert result.offered == result.processed + result.shed == N_PACKETS
    assert report.chunks_verified == len(manifest.chunks)
    ratio = max(ratios)

    # --- overload: constrained service rate must shed, exactly --------
    overload = replay_corpus(
        root,
        rules,
        _config(service_rate=SERVICE_RATE, queue_capacity=4096),
        rate=4.0 * SERVICE_RATE,
        seed=29,
    )
    oresult = overload.result
    assert oresult.offered == oresult.processed + oresult.shed == N_PACKETS
    assert oresult.shed_fraction > 0.2

    # --- drift→retrain→swap on both executors -------------------------
    swaps = {}
    for executor, n_shards in [("inline", 1), ("process", 2)]:
        swapped = replay_corpus(
            root,
            rules,
            _config(executor=executor, n_shards=n_shards),
            swap_after=N_PACKETS // 2,
            swap_rules=lambda: synthetic_firewall_ruleset(seed=31),
        )
        sresult = swapped.result
        assert sresult.offered == sresult.processed + sresult.shed
        assert sresult.rule_swaps == 1
        assert swapped.swap_latency_seconds is not None
        assert swapped.swap_latency_seconds > 0
        swaps[executor] = swapped

    rows = [
        {
            "leg": "build",
            "pkts_per_sec": round(build_pps),
            "shed_fraction": 0.0,
            "note": f"{len(manifest.chunks)} chunks, "
            f"{manifest.bytes / 1e6:.0f} MB",
        },
        {
            "leg": "in-memory soak",
            "pkts_per_sec": round(baseline.pkts_per_sec),
            "shed_fraction": round(baseline.shed_fraction, 4),
            "note": "E17-style baseline",
        },
        {
            "leg": "corpus replay",
            "pkts_per_sec": round(result.pkts_per_sec),
            "shed_fraction": round(result.shed_fraction, 4),
            "note": f"{ratio:.2f}x in-memory, digests verified",
        },
        {
            "leg": "overload 4.0x",
            "pkts_per_sec": round(oresult.pkts_per_sec),
            "shed_fraction": round(oresult.shed_fraction, 4),
            "note": "exact shed accounting",
        },
    ]
    for executor, swapped in swaps.items():
        rows.append(
            {
                "leg": f"swap ({executor})",
                "pkts_per_sec": round(swapped.result.pkts_per_sec),
                "shed_fraction": round(swapped.result.shed_fraction, 4),
                "note": f"retrain+install "
                f"{1e3 * swapped.swap_latency_seconds:.2f}ms",
            }
        )
    print()
    print(format_table(rows, title="E20: corpus endurance replay"))
    print(
        f"  memory: peak RSS {report.peak_rss_bytes / 1e6:,.1f} MB "
        f"(+{report.rss_growth_bytes / 1e6:,.1f} MB over baseline, "
        f"corpus {manifest.bytes / 1e6:,.1f} MB on disk)"
    )

    # Acceptance: the disk+verify tax is bounded and memory stays flat.
    assert ratio >= 0.9
    assert report.rss_growth_bytes < manifest.bytes / 2

    benchmark.pedantic(
        lambda: replay_corpus(root, rules, _config()), rounds=1, iterations=1
    )
