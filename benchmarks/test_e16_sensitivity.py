"""E16 (extension) — hyper-parameter sensitivity of the two-stage method.

Two knobs a deployer must set without a paper to copy from:

* **gate sparsity λ (L1)** — too weak and the gates stay open (no
  selection pressure); too strong and informative gates close too.  The
  sweep reports how many gates stay effectively open and the downstream
  accuracy at a fixed k.
* **byte window n** — how much of each packet Stage 1 sees.  Too small
  cuts off application headers; larger windows cost parser width but not
  accuracy.

Expected shape: a wide plateau in λ (the method is not fragile), and
accuracy roughly flat in window size once the informative headers are
covered.  Timed section: one full fit at the default configuration.
"""

import numpy as np

from repro.core import DetectorConfig, TwoStageDetector
from repro.core.stage1 import GateSelector
from repro.datasets import FeatureExtractor
from repro.eval.report import format_table

L1_VALUES = [1e-4, 1e-3, 5e-3, 2e-2, 1e-1]
WINDOWS = [32, 48, 64, 96]


def test_e16_l1_sweep(benchmark, suite):
    dataset = suite["inet"]
    rows = []
    accuracies = []
    for l1 in L1_VALUES:
        selector = GateSelector(
            dataset.extractor.n_bytes, epochs=15, l1=l1, n_runs=1, seed=3
        )
        selector.fit(dataset.x_train, dataset.y_train_binary)
        # raw (un-normalised) gate values of the fitted run
        assert selector.gate is not None
        raw_gates = selector.gate.gates()
        mean_gate = float(raw_gates.mean())
        detector = TwoStageDetector(
            DetectorConfig(
                n_fields=6, selector_l1=l1,
                selector_epochs=15, epochs=40, seed=3,
            )
        )
        detector.fit(dataset.x_train, dataset.y_train_binary)
        accuracy = detector.rule_accuracy(dataset.x_test, dataset.y_test_binary)
        accuracies.append(accuracy)
        rows.append(
            {
                "l1": l1,
                "mean_gate": round(mean_gate, 4),
                "rule_accuracy": round(accuracy, 4),
            }
        )
    print()
    print(format_table(rows, title="E16a: gate sparsity sweep (k=6)"))
    # shape: sparsity pressure pushes the average gate down...
    assert rows[-1]["mean_gate"] < rows[0]["mean_gate"]
    # ...while accuracy stays on a plateau except possibly the extreme end
    assert max(accuracies[:4]) - min(accuracies[:4]) < 0.08

    def fit_default():
        detector = TwoStageDetector(
            DetectorConfig(n_fields=6, selector_epochs=15, epochs=40, seed=3)
        )
        detector.fit(dataset.x_train, dataset.y_train_binary)
        return detector

    benchmark.pedantic(fit_default, rounds=1, iterations=1)


def test_e16_window_sweep(benchmark, suite):
    dataset = suite["inet"]
    packets_train = dataset.train_packets
    packets_test = dataset.test_packets
    rows = []
    accuracies = []
    for window in WINDOWS:
        extractor = FeatureExtractor(n_bytes=window)
        x_train = extractor.transform(packets_train)
        x_test = extractor.transform(packets_test)
        detector = TwoStageDetector(
            DetectorConfig(
                n_bytes=window, n_fields=6,
                selector_epochs=15, epochs=40, seed=3,
            )
        )
        detector.fit(x_train, dataset.y_train_binary)
        accuracy = detector.rule_accuracy(x_test, dataset.y_test_binary)
        accuracies.append(accuracy)
        rows.append(
            {
                "window_bytes": window,
                "rule_accuracy": round(accuracy, 4),
                "offsets": str(list(detector.offsets)),
            }
        )
    print()
    print(format_table(rows, title="E16b: byte-window sweep (k=6)"))
    # shape: once headers are covered, accuracy is flat within noise
    assert max(accuracies) - min(accuracies) < 0.1
    assert accuracies[-1] > 0.9

    extractor = FeatureExtractor(n_bytes=WINDOWS[-1])
    benchmark(extractor.transform, packets_test)
