"""E6 — Universality across heterogeneous protocols (the paper's key claim).

Regenerates: the same untouched pipeline applied to non-IP stacks, against
the 5-tuple firewall which cannot even parse them.  Expected shape: the
two-stage rules keep high accuracy on Zigbee-like/BLE-like traffic; the
classic firewall degenerates to always-allow (accuracy = benign fraction).
Timed section: full pipeline fit on the Zigbee trace.
"""

import numpy as np

from repro.baselines import FiveTupleFirewall
from repro.core import DetectorConfig, TwoStageDetector
from repro.eval.metrics import binary_metrics
from repro.eval.report import format_table

from _common import x_test_bytes


def test_e6_universality(benchmark, suite, detectors):
    rows = []
    for name, dataset in suite.items():
        detector = detectors[name]
        rules = detector.generate_rules()
        rule_pred = rules.predict(x_test_bytes(dataset))
        ours = binary_metrics(dataset.y_test_binary, rule_pred)

        firewall = FiveTupleFirewall().fit_packets(dataset.train_packets)
        fw_pred = firewall.predict_packets(dataset.test_packets)
        fw = binary_metrics(dataset.y_test_binary, fw_pred)

        rows.append(
            {
                "trace": name,
                "two_stage_acc": round(ours.accuracy, 4),
                "two_stage_recall": round(ours.recall, 4),
                "firewall_acc": round(fw.accuracy, 4),
                "firewall_recall": round(fw.recall, 4),
                "firewall_coverage": round(
                    firewall.coverage(dataset.test_packets), 4
                ),
            }
        )
    print()
    print(format_table(rows, title="E6: universality across protocol stacks"))

    by_trace = {r["trace"]: r for r in rows}
    for non_ip in ("zigbee", "ble"):
        row = by_trace[non_ip]
        assert row["firewall_coverage"] == 0.0  # cannot parse at all
        assert row["firewall_recall"] == 0.0
        assert row["two_stage_acc"] > 0.9
        assert row["two_stage_acc"] > row["firewall_acc"]

    def fit_zigbee():
        dataset = suite["zigbee"]
        detector = TwoStageDetector(
            DetectorConfig(n_fields=4, selector_epochs=12, epochs=20, seed=3)
        )
        detector.fit(dataset.x_train, dataset.y_train_binary)
        return detector.generate_rules()

    rules = benchmark.pedantic(fit_zigbee, rounds=1, iterations=1)
    assert len(rules) >= 1
