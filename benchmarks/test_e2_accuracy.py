"""E2 — Detection accuracy vs. state of the art (the paper's headline table).

Regenerates: per-dataset accuracy/precision/recall/F1 for the two-stage
method (both the compact model and the generated rules) against the ML
baselines with unrestricted features.  Expected shape: the two-stage rules
stay within a few points of the full-feature methods while matching only
6 byte fields.  Timed section: two-stage training on the inet trace.
"""

from repro.core import DetectorConfig, TwoStageDetector
from repro.eval.harness import compare_methods
from repro.eval.report import format_table


def test_e2_accuracy_table(benchmark, suite):
    rows = []
    for name, dataset in suite.items():
        results = compare_methods(
            dataset,
            detector_config=DetectorConfig(
                n_fields=6, selector_epochs=20, epochs=40, seed=3
            ),
        )
        rows.extend(result.row() for result in results)
    print()
    print(format_table(rows, title="E2: accuracy vs state of the art"))

    by_key = {(r["dataset"], r["method"]): r for r in rows}
    for name in suite:
        two_stage = by_key[(name, "two-stage (rules)")]
        full_mlp = by_key[(name, "full-mlp")]
        # shape check: rules within 8 points of the unrestricted DNN
        assert two_stage["accuracy"] > full_mlp["accuracy"] - 0.08
        assert two_stage["accuracy"] > 0.85

    def train():
        dataset = suite["inet"]
        detector = TwoStageDetector(
            DetectorConfig(n_fields=6, selector_epochs=20, epochs=40, seed=3)
        )
        detector.fit(dataset.x_train, dataset.y_train_binary)
        return detector

    detector = benchmark.pedantic(train, rounds=1, iterations=1)
    assert detector.offsets is not None
