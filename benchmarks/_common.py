"""Shared constants/helpers for the benchmark modules (not a conftest)."""

from __future__ import annotations

import numpy as np

#: One knob for every benchmark's dataset scale.
SUITE_KWARGS = dict(duration=30.0, n_devices=2, n_bytes=64, seed=7)


def x_test_bytes(dataset) -> np.ndarray:
    """Unscaled uint8 view of a dataset's test features (exact bytes)."""
    return dataset.x_test_bytes


def x_train_bytes(dataset) -> np.ndarray:
    """Unscaled uint8 view of a dataset's train features (exact bytes)."""
    return dataset.x_train_bytes
