"""E7 — End-to-end gateway replay with per-attack-family breakdown.

Regenerates: deploy the learned rules on the simulated P4 switch, replay
the held-out trace, and report per-family block rates plus benign pass
rate — the firewall-behaviour table.  Timed section: switch replay of the
full test trace.
"""

import numpy as np

from repro.dataplane import GatewayController
from repro.eval.report import format_table


def test_e7_gateway_replay(benchmark, suite, detectors):
    dataset = suite["inet"]
    rules = detectors["inet"].generate_rules()
    controller = GatewayController.for_ruleset(rules)
    report = controller.deploy(rules)
    print()
    print(f"deployment: {report}")

    verdicts = controller.switch.process_trace(dataset.test_packets)
    dropped = np.array([v.dropped for v in verdicts])

    rows = []
    categories = sorted({p.label.category for p in dataset.test_packets})
    for category in categories:
        mask = np.array(
            [p.label.category == category for p in dataset.test_packets]
        )
        rate = float(dropped[mask].mean()) if mask.any() else 0.0
        rows.append(
            {
                "category": category,
                "packets": int(mask.sum()),
                "dropped": int(dropped[mask].sum()),
                "drop_rate": round(rate, 4),
            }
        )
    print(format_table(rows, title="E7: per-family gateway behaviour"))

    by_cat = {r["category"]: r for r in rows}
    assert by_cat["benign"]["drop_rate"] < 0.15
    attack_rows = [r for r in rows if r["category"] != "benign"]
    blocked_well = [r for r in attack_rows if r["drop_rate"] > 0.8]
    assert len(blocked_well) >= len(attack_rows) - 1  # at most one weak family
    assert controller.switch.stats.received == len(dataset.test_packets)
    assert sum(controller.hit_counts()) == controller.switch.stats.dropped

    def replay():
        controller.switch.reset_stats()
        return controller.switch.process_trace(dataset.test_packets)

    benchmark(replay)
