"""E14 (extension) — what ingress filtering buys the constrained LAN.

The motivation scene of the paper: floods that cross the gateway congest
the IoT uplink and delay benign traffic.  We model the uplink as a finite
FIFO queue and replay the trace three ways: no firewall, the learned rules
at ingress, and an oracle filter (perfect labels) as the upper bound.

Expected shape: benign p99 latency and loss collapse once the learned
rules drop attack traffic at ingress, approaching the oracle.  Timed
section: queue simulation with the learned admit function.
"""

import numpy as np

from repro.dataplane import simulate_queue
from repro.eval.harness import GATEWAY_BATCH_SIZE, replay_gateway
from repro.eval.report import format_table

#: Uplink service rate — sized so the attack windows overload it ~2x
#: while benign traffic alone fits comfortably.
RATE_BYTES_PER_S = 2_000
BUFFER_BYTES = 16_000


def _benign_outcomes(result, replay):
    """(mean delay, p99 delay, loss rate) over benign packets only."""
    benign = {
        i for i, p in enumerate(replay) if not p.label.is_attack
    }
    delays = [
        d for d, idx in zip(result.delays, result.forwarded_index)
        if idx in benign
    ]
    lost = sum(1 for idx in result.tail_dropped_index if idx in benign)
    filtered = sum(1 for idx in result.ingress_dropped_index if idx in benign)
    total = len(benign)
    mean = float(np.mean(delays)) if delays else 0.0
    p99 = float(np.percentile(delays, 99)) if delays else 0.0
    return mean, p99, lost / total, filtered / total


def test_e14_lan_protection(benchmark, suite, detectors):
    dataset = suite["inet"]
    replay = sorted(dataset.test_packets, key=lambda p: p.timestamp)

    rules = detectors["inet"].generate_rules()
    # Ingress filtering runs on the switch's vectorised batch path: decide
    # the whole trace in one pass, then feed the per-packet verdicts to the
    # queue simulation in arrival order.
    verdicts, controller = replay_gateway(rules, replay)
    admitted = [not v.dropped for v in verdicts]

    def learned_admit_factory():
        decisions = iter(admitted)
        return lambda packet: next(decisions)

    scenarios = [
        ("no firewall", lambda: None),
        ("learned rules", learned_admit_factory),
        ("oracle filter", lambda: (lambda p: not p.label.is_attack)),
    ]
    rows = []
    outcomes = {}
    for name, admit_factory in scenarios:
        result = simulate_queue(
            replay,
            rate_bytes_per_s=RATE_BYTES_PER_S,
            buffer_bytes=BUFFER_BYTES,
            admit=admit_factory(),
        )
        mean, p99, loss, filtered = _benign_outcomes(result, replay)
        outcomes[name] = (mean, p99, loss)
        rows.append(
            {
                "ingress": name,
                "benign_mean_delay_ms": round(1000 * mean, 2),
                "benign_p99_delay_ms": round(1000 * p99, 2),
                "benign_loss": round(loss, 4),
                "benign_filtered": round(filtered, 4),
            }
        )
    print()
    print(format_table(rows, title="E14: uplink protection under flood load"))

    none_mean, none_p99, none_loss = outcomes["no firewall"]
    rules_mean, rules_p99, rules_loss = outcomes["learned rules"]
    oracle_mean, *__ = outcomes["oracle filter"]
    # shape: learned filtering slashes benign latency, close to the oracle
    assert rules_p99 < none_p99 / 2
    assert rules_loss <= none_loss
    assert rules_mean < none_mean
    assert rules_mean < 3 * oracle_mean + 1e-3

    def run():
        # Timed end-to-end: batch ingress classification + queue simulation.
        controller.switch.reset_stats()
        fresh = controller.switch.process_trace(
            replay, batch_size=GATEWAY_BATCH_SIZE
        )
        decisions = iter(fresh)
        return simulate_queue(
            replay,
            rate_bytes_per_s=RATE_BYTES_PER_S,
            buffer_bytes=BUFFER_BYTES,
            admit=lambda packet: not next(decisions).dropped,
        )

    benchmark(run)
