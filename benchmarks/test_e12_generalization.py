"""E12 (extension) — generalisation and evasion robustness of the rules.

Once deployed, the rules face traffic the training capture never showed:

* **fresh trace** — same attack families, different seed (new devices,
  ports, timings): does the model generalise beyond memorising flows?
* **attack variants** — the same families re-parameterised (SYN flood at
  a different destination port, faster Mirai wave): partial drift.
* **unmatched-byte evasion** — an adaptive attacker mutates every byte the
  rules do *not* match; decisions must be bit-for-bit identical (this is
  a hard invariant of match-action filtering, checked exactly).

Expected shape: fresh-trace accuracy within a few points of held-out
accuracy; variant recall degrades gracefully for the changed families;
unmatched-byte evasion changes nothing.  Timed section: rule evaluation
over the mutated trace.
"""

import numpy as np

from repro.datasets import TraceConfig, make_dataset
from repro.datasets.attacks import MiraiTelnet, SynFlood, UdpFlood
from repro.eval.metrics import binary_metrics
from repro.eval.report import format_table

from _common import SUITE_KWARGS, x_test_bytes


class FastMirai(MiraiTelnet):
    """Mirai wave at 3× the trained rate."""

    def __init__(self, index=0):
        super().__init__(index, rate=36.0)


class WebSynFlood(SynFlood):
    """SYN flood aimed at port 80 instead of the trained 1883."""

    def __init__(self, index=0):
        super().__init__(index, dst_port=80)


def _bytes_and_truth(dataset):
    x = np.round(
        np.concatenate([dataset.x_train, dataset.x_test]) * 255
    ).astype(np.uint8)
    y = np.concatenate([dataset.y_train_binary, dataset.y_test_binary])
    return x, y


def test_e12_generalization(benchmark, suite, detectors):
    detector = detectors["inet"]
    rules = detector.generate_rules()
    matched = set(m.offset for rule in rules for m in rule.matches)

    rows = []

    def evaluate(name, x_bytes, truth):
        metrics = binary_metrics(truth, rules.predict(x_bytes))
        rows.append(
            {
                "condition": name,
                "packets": len(truth),
                "accuracy": round(metrics.accuracy, 4),
                "recall": round(metrics.recall, 4),
                "fpr": round(metrics.false_positive_rate, 4),
            }
        )
        return metrics

    held_out = evaluate(
        "held-out (same trace)",
        x_test_bytes(suite["inet"]),
        suite["inet"].y_test_binary,
    )

    fresh = make_dataset(
        "fresh",
        TraceConfig(
            stack="inet",
            duration=SUITE_KWARGS["duration"],
            n_devices=SUITE_KWARGS["n_devices"],
            seed=SUITE_KWARGS["seed"] + 100,
        ),
    )
    fresh_metrics = evaluate("fresh trace (new seed)", *_bytes_and_truth(fresh))

    variants = make_dataset(
        "variants",
        TraceConfig(
            stack="inet",
            duration=SUITE_KWARGS["duration"],
            n_devices=SUITE_KWARGS["n_devices"],
            attack_families=[WebSynFlood, FastMirai, UdpFlood],
            seed=SUITE_KWARGS["seed"] + 200,
        ),
    )
    variant_metrics = evaluate(
        "attack variants (new port/rate)", *_bytes_and_truth(variants)
    )

    # Unmatched-byte evasion: mutate every byte the rules don't look at.
    dataset = suite["inet"]
    x_bytes = x_test_bytes(dataset)
    rng = np.random.default_rng(0)
    mutated = x_bytes.copy()
    for offset in range(mutated.shape[1]):
        if offset not in matched:
            mutated[:, offset] = rng.integers(0, 256, size=len(mutated))
    baseline_pred = rules.predict(x_bytes)
    mutated_pred = rules.predict(mutated)
    evasion_changed = int((baseline_pred != mutated_pred).sum())
    rows.append(
        {
            "condition": "unmatched-byte evasion",
            "packets": len(mutated),
            "accuracy": "(decisions changed: "
            + str(evasion_changed)
            + ")",
            "recall": "",
            "fpr": "",
        }
    )

    print()
    print(format_table(rows, title="E12: generalisation and evasion"))
    print(f"rules match offsets {sorted(matched)} of "
          f"{x_bytes.shape[1]} byte positions")

    # shapes
    assert fresh_metrics.accuracy > held_out.accuracy - 0.05
    assert variant_metrics.recall > 0.5  # graceful, not catastrophic
    assert evasion_changed == 0          # hard match-action invariant

    benchmark(rules.predict, mutated)
