"""E1 — Dataset summary table (the paper's trace-description table).

Regenerates: per-protocol trace composition — packets, attack families,
class balance, byte sizes.  Timed section: full trace generation.
"""

from repro.datasets import TraceConfig, generate_trace
from repro.eval.report import format_table

from _common import SUITE_KWARGS


def test_e1_dataset_summary(benchmark, suite):
    rows = []
    for name, dataset in suite.items():
        packets = dataset.train_packets + dataset.test_packets
        counts = dataset.class_counts()
        attacks = {k: v for k, v in counts.items() if k != "benign"}
        rows.append(
            {
                "trace": name,
                "packets": len(packets),
                "benign": counts.get("benign", 0),
                "attack": sum(attacks.values()),
                "families": len(attacks),
                "avg_bytes": round(
                    sum(len(p.data) for p in packets) / len(packets), 1
                ),
                "duration_s": dataset.config.duration,
            }
        )
    print()
    print(format_table(rows, title="E1: evaluation traces"))
    assert all(row["benign"] > 0 and row["attack"] > 0 for row in rows)

    # Timed: regenerate the inet trace from scratch.
    config = TraceConfig(
        stack="inet",
        duration=SUITE_KWARGS["duration"],
        n_devices=SUITE_KWARGS["n_devices"],
        seed=SUITE_KWARGS["seed"],
    )
    packets = benchmark(generate_trace, config)
    assert len(packets) > 100
