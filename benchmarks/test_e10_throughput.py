"""E10 — Per-packet match cost as table size grows (throughput proxy).

Regenerates: the forwarding-cost series — per-packet processing time of
the simulated switch at increasing ternary-table occupancy, plus the tiny
deployed table of the learned rules for contrast.  Absolute numbers are
simulator times (hardware would be line-rate); the *shape* — per-packet
cost grows with entries in a software ternary search while the learned
table stays small — is what the experiment demonstrates.  The series is
measured on both data paths: the scalar reference loop and the
numpy-vectorised batch pipeline (``process_trace(batch_size=...)``),
whose speedup at gateway batch sizes is asserted.  Timed section: batch
replay through the learned deployment (pytest-benchmark stats).
"""

import time

import numpy as np

from repro.dataplane import Switch, SwitchConfig, TernaryTable
from repro.eval.harness import GATEWAY_BATCH_SIZE, replay_gateway
from repro.eval.report import format_series


def _filled_switch(offsets, n_entries, rng):
    switch = Switch(SwitchConfig(key_offsets=offsets))
    table = TernaryTable("fw", len(offsets), max_entries=max(n_entries, 1024))
    for i in range(n_entries):
        value = tuple(int(v) for v in rng.integers(0, 256, size=len(offsets)))
        table.add(value, (255,) * len(offsets), "drop", priority=i)
    switch.add_table(table)
    return switch


def test_e10_match_cost_series(benchmark, suite, detectors):
    dataset = suite["inet"]
    rules = detectors["inet"].generate_rules()
    packets = dataset.test_packets[:400]
    # One full batch for the vectorised path (the acceptance batch size).
    batch_packets = (packets * ((GATEWAY_BATCH_SIZE // len(packets)) + 1))[
        :GATEWAY_BATCH_SIZE
    ]
    rng = np.random.default_rng(0)

    sizes = [10, 100, 1000]
    scalar_micros = []
    batch_micros = []
    speedups = []
    for size in sizes:
        switch = _filled_switch(rules.offsets, size, rng)
        start = time.perf_counter()
        switch.process_trace(batch_packets)
        scalar_elapsed = time.perf_counter() - start
        switch.reset_stats()
        start = time.perf_counter()
        switch.process_trace(batch_packets, batch_size=GATEWAY_BATCH_SIZE)
        batch_elapsed = time.perf_counter() - start
        scalar_micros.append(round(1e6 * scalar_elapsed / len(batch_packets), 2))
        batch_micros.append(round(1e6 * batch_elapsed / len(batch_packets), 2))
        speedups.append(scalar_elapsed / batch_elapsed)
    print()
    print(
        format_series(
            sizes,
            {
                "us_per_packet_scalar": scalar_micros,
                "us_per_packet_batch": batch_micros,
                "speedup": [round(s, 1) for s in speedups],
            },
            x_name="table_entries",
            title="E10: software-switch match cost vs table size",
        )
    )
    # shape: linear-ish growth in a software TCAM model
    assert scalar_micros[-1] > scalar_micros[0]
    # the vectorised path buys at least 5x packets/sec at full batches
    assert max(speedups) >= 5.0, f"batch speedups {speedups} below 5x"

    verdicts, controller = replay_gateway(rules, batch_packets)
    assert len(verdicts) == len(batch_packets)
    print(
        f"learned deployment: {len(controller.switch.table('firewall'))} "
        f"entries (vs {sizes[-1]} in the stress series)"
    )

    def replay():
        controller.switch.reset_stats()
        controller.switch.process_trace(
            batch_packets, batch_size=GATEWAY_BATCH_SIZE
        )

    benchmark(replay)
