"""E10 — Per-packet match cost as table size grows (throughput proxy).

Regenerates: the forwarding-cost series — per-packet processing time of
the simulated switch at increasing ternary-table occupancy, plus the tiny
deployed table of the learned rules for contrast.  Absolute numbers are
simulator times (hardware would be line-rate); the *shape* — per-packet
cost grows with entries in a software ternary search while the learned
table stays small — is what the experiment demonstrates.  Timed section:
replay through the learned deployment (pytest-benchmark stats).
"""

import time

import numpy as np

from repro.dataplane import GatewayController, Switch, SwitchConfig, TernaryTable
from repro.eval.report import format_series


def _filled_switch(offsets, n_entries, rng):
    switch = Switch(SwitchConfig(key_offsets=offsets))
    table = TernaryTable("fw", len(offsets), max_entries=max(n_entries, 1024))
    for i in range(n_entries):
        value = tuple(int(v) for v in rng.integers(0, 256, size=len(offsets)))
        table.add(value, (255,) * len(offsets), "drop", priority=i)
    switch.add_table(table)
    return switch


def test_e10_match_cost_series(benchmark, suite, detectors):
    dataset = suite["inet"]
    rules = detectors["inet"].generate_rules()
    packets = dataset.test_packets[:400]
    rng = np.random.default_rng(0)

    sizes = [10, 100, 1000]
    micros = []
    for size in sizes:
        switch = _filled_switch(rules.offsets, size, rng)
        start = time.perf_counter()
        switch.process_trace(packets)
        elapsed = time.perf_counter() - start
        micros.append(round(1e6 * elapsed / len(packets), 2))
    print()
    print(
        format_series(
            sizes,
            {"us_per_packet": micros},
            x_name="table_entries",
            title="E10: software-switch match cost vs table size",
        )
    )
    # shape: linear-ish growth in a software TCAM model
    assert micros[-1] > micros[0]

    controller = GatewayController.for_ruleset(rules)
    controller.deploy(rules)
    print(
        f"learned deployment: {len(controller.switch.table('firewall'))} "
        f"entries (vs {sizes[-1]} in the stress series)"
    )

    def replay():
        controller.switch.reset_stats()
        controller.switch.process_trace(packets)

    benchmark(replay)
