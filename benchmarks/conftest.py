"""Shared benchmark fixtures.

Each benchmark prints the table/series it regenerates (run pytest with
``-s`` to see them; they are also summarised in EXPERIMENTS.md).  The
datasets and trained detectors are session-cached so the timed sections
measure the interesting work, not trace generation.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

# Benchmarks reuse generated traces across runs via the on-disk dataset
# cache.  Honour an operator-provided REPRO_CACHE_DIR; default to a
# repo-local cache directory otherwise.
os.environ.setdefault(
    "REPRO_CACHE_DIR", str(Path(__file__).resolve().parent.parent / ".cache" / "datasets")
)

from repro.core import DetectorConfig, TwoStageDetector
from repro.eval.harness import cached_suite

from _common import SUITE_KWARGS


@pytest.fixture(scope="session")
def suite():
    return cached_suite(**SUITE_KWARGS)


@pytest.fixture(scope="session")
def inet(suite):
    return suite["inet"]


@pytest.fixture(scope="session")
def detectors(suite):
    """One trained two-stage detector per dataset (k=6 fields)."""
    result = {}
    for name, dataset in suite.items():
        detector = TwoStageDetector(
            DetectorConfig(n_fields=6, selector_epochs=20, epochs=40, seed=3)
        )
        detector.fit(dataset.x_train, dataset.y_train_binary)
        result[name] = detector
    return result
