"""E5 — Data-plane resource cost vs. baselines (the efficiency table).

Regenerates: switch-memory cost of the two-stage rules versus (a) the
classic exact 5-tuple blocklist and (b) a hypothetical exact table over the
full byte window.  Expected shape: the two-stage ternary table is orders of
magnitude cheaper in key width × entries.  Timed section: ternary
expansion + resource accounting.
"""

from repro.baselines import FiveTupleFirewall
from repro.dataplane.resources import (
    FIVE_TUPLE_BITS,
    estimate_exact_table,
    estimate_ruleset,
)
from repro.eval.report import format_table


def test_e5_resource_table(benchmark, suite, detectors):
    dataset = suite["inet"]
    detector = detectors["inet"]
    rules = detector.generate_rules()

    firewall_exact = FiveTupleFirewall().fit_packets(dataset.train_packets)
    firewall_src = FiveTupleFirewall(granularity="src").fit_packets(
        dataset.train_packets
    )

    estimates = [
        estimate_ruleset(rules, strategy="two-stage rules"),
        estimate_exact_table(
            firewall_exact.table_entries, FIVE_TUPLE_BITS,
            strategy="5-tuple blocklist",
        ),
        estimate_exact_table(
            firewall_src.table_entries, 32, strategy="src-IP blocklist"
        ),
        estimate_exact_table(
            len(dataset.train_packets),
            8 * dataset.extractor.n_bytes,
            strategy="full-window exact",
        ),
    ]
    rows = [e.row() for e in estimates]
    print()
    print(format_table(rows, title="E5: data-plane resource cost"))

    two_stage, five_tuple, __, full_window = estimates
    # shape: learned rules are far cheaper than per-tuple blocklists
    assert two_stage.total_bits < five_tuple.total_bits
    assert two_stage.total_bits < full_window.total_bits / 5
    assert two_stage.key_bits == 8 * len(rules.offsets)

    benchmark(lambda: estimate_ruleset(rules).total_bits)
