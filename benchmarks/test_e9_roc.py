"""E9 — ROC / threshold behaviour: compact model vs full-packet DNN.

Regenerates: ROC operating points and AUC of the k-field compact model
against the unrestricted full-packet MLP.  Expected shape: both AUCs high;
the compact model's AUC within a few points of the full model despite the
field budget.  Timed section: one ROC computation.
"""

import numpy as np

from repro.baselines import FullPacketMLP
from repro.eval.metrics import auc, roc_curve
from repro.eval.report import format_series, format_table


def _points_at(fpr, tpr, targets=(0.01, 0.05, 0.1)):
    out = []
    for target in targets:
        idx = int(np.searchsorted(fpr, target, side="right")) - 1
        out.append(round(float(tpr[max(idx, 0)]), 4))
    return out


def test_e9_roc(benchmark, suite, detectors):
    dataset = suite["inet"]
    detector = detectors["inet"]

    compact_scores = detector.predict_proba(dataset.x_test)[:, 1]
    full = FullPacketMLP(dataset.extractor.n_bytes, epochs=25, seed=3)
    full.fit(dataset.x_train, dataset.y_train_binary)
    full_scores = full.predict_proba(dataset.x_test)[:, 1]

    y = dataset.y_test_binary
    compact_fpr, compact_tpr, __ = roc_curve(y, compact_scores)
    full_fpr, full_tpr, __ = roc_curve(y, full_scores)
    compact_auc = auc(compact_fpr, compact_tpr)
    full_auc = auc(full_fpr, full_tpr)

    print()
    print(
        format_table(
            [
                {"model": "two-stage compact (6 fields)", "auc": round(compact_auc, 4)},
                {"model": "full-packet MLP (64 fields)", "auc": round(full_auc, 4)},
            ],
            title="E9: AUC comparison",
        )
    )
    targets = [0.01, 0.05, 0.1]
    print(
        format_series(
            targets,
            {
                "tpr_compact": _points_at(compact_fpr, compact_tpr, targets),
                "tpr_full": _points_at(full_fpr, full_tpr, targets),
            },
            x_name="fpr_budget",
            title="E9: TPR at FPR budgets",
        )
    )

    assert compact_auc > 0.95
    assert compact_auc > full_auc - 0.05

    benchmark(lambda: auc(*roc_curve(y, compact_scores)[:2]))
