"""E13 (extension) — attack *classification*, not just detection.

The paper's rules answer "attack or not"; programmable actions let the
gateway respond per family (drop floods outright, quarantine telnet brute
force for forensics).  This experiment trains the pipeline multi-class,
distils per-family rules, and reports the confusion matrix the rules
achieve plus the switch-level action counters.

Expected shape: per-family F1 high for every family (the byte patterns
that *detect* a family usually also *identify* it); quarantine traffic is
separated from dropped traffic at the switch.  Timed section: multi-class
rule generation.
"""

import numpy as np

from repro.core import DetectorConfig, TwoStageDetector
from repro.core.rules import ACTION_QUARANTINE
from repro.dataplane import GatewayController
from repro.eval.metrics import confusion_matrix, per_class_report
from repro.eval.report import format_table

from _common import x_test_bytes


def test_e13_multiclass_rules(benchmark, suite):
    dataset = suite["inet"]
    detector = TwoStageDetector(
        DetectorConfig(n_fields=8, selector_epochs=20, epochs=40, seed=0)
    )
    detector.fit(dataset.x_train, dataset.y_train)  # multi-class labels

    mirai_class = dataset.labels.add("mirai_telnet")
    rules = detector.generate_multiclass_rules(
        action_map={mirai_class: ACTION_QUARANTINE}
    )
    predictions = rules.predict_class(x_test_bytes(dataset))

    rows = per_class_report(dataset.y_test, predictions, dataset.labels.classes)
    print()
    print(format_table(rows, title="E13: per-family classification by rules"))
    matrix = confusion_matrix(
        dataset.y_test, predictions, dataset.labels.num_classes
    )
    print("confusion matrix (rows=truth):")
    print(matrix)

    overall = (predictions == dataset.y_test).mean()
    print(f"overall multi-class accuracy: {overall:.4f}")
    assert overall > 0.9
    f1_by_class = {row["class"]: row["f1"] for row in rows}
    weak = [name for name, f1 in f1_by_class.items() if f1 < 0.8]
    assert len(weak) <= 1, f"weak classes: {weak}"

    # Switch-level: quarantine separated from drops.
    controller = GatewayController.for_ruleset(rules)
    controller.deploy(rules)
    controller.switch.process_trace(dataset.test_packets)
    stats = controller.switch.stats
    print(
        f"switch counters: allowed={stats.allowed} dropped={stats.dropped} "
        f"quarantined={stats.quarantined}"
    )
    mirai_total = sum(
        1 for p in dataset.test_packets if p.label.category == "mirai_telnet"
    )
    assert stats.quarantined > 0.7 * mirai_total
    assert stats.received == stats.allowed + stats.dropped + stats.quarantined

    benchmark.pedantic(
        detector.generate_multiclass_rules,
        kwargs={"action_map": {mirai_class: ACTION_QUARANTINE}},
        rounds=1,
        iterations=1,
    )
